package obs

import (
	"sync"
	"testing"
)

// TestTracerConcurrentSpans drives many goroutines through overlapping
// spans of the same tracer — the fleetd shape, where every host worker
// traces its own tick concurrently. Run with -race; the assertion is
// that counts add up and nothing tears.
func TestTracerConcurrentSpans(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r, "vmpower_trace_total_seconds", "vmpower_trace_stage_seconds",
		"trace", "snapshot", "solve", "publish")
	var wg sync.WaitGroup
	const workers, spans = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < spans; i++ {
				s := tr.Start()
				s.Mark("snapshot")
				s.Mark("solve")
				s.Mark("unknown-stage-is-ignored")
				s.Mark("publish")
				s.End()
			}
		}()
	}
	wg.Wait()
	if got := tr.total.Count(); got != workers*spans {
		t.Fatalf("total count = %d, want %d", got, workers*spans)
	}
	for _, stage := range []string{"snapshot", "solve", "publish"} {
		if got := tr.stages[stage].Count(); got != workers*spans {
			t.Fatalf("stage %s count = %d, want %d", stage, got, workers*spans)
		}
	}
}

// TestTracerNilSafety pins the uninstrumented path: nil tracer, nil
// span, all methods allocation-free no-ops.
func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	if allocs := testing.AllocsPerRun(100, func() {
		s := tr.Start()
		s.Mark("solve")
		s.End()
	}); allocs != 0 {
		t.Fatalf("nil tracer span allocates %v/op, want 0", allocs)
	}
}
