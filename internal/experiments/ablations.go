package experiments

import (
	"fmt"

	"vmpower/internal/core"
	"vmpower/internal/hypervisor"
	"vmpower/internal/machine"
	"vmpower/internal/shapley"
	"vmpower/internal/stats"
	"vmpower/internal/trace"
	"vmpower/internal/vm"
	"vmpower/internal/workload"
)

func init() {
	register(Descriptor{ID: "mc", Title: "Ablation — Monte-Carlo permutation count vs Shapley error", Run: runMC})
	register(Descriptor{ID: "trainsize", Title: "Ablation — offline training size vs VHC approximation error", Run: runTrainSize})
	register(Descriptor{ID: "resolution", Title: "Ablation — state normalizing resolution vs error", Run: runResolution})
	register(Descriptor{ID: "scheduler", Title: "Ablation — scheduler policy vs the Fig. 4 phenomenon", Run: runScheduler})
	register(Descriptor{ID: "idle", Title: "Ablation — idle-power attribution rules (Sec. VIII)", Run: runIdle})
}

// runMC measures Monte-Carlo convergence: a 12-VM ground-truth game on the
// Xeon machine, exact Shapley as reference, MC at growing permutation
// counts. Error should shrink roughly as 1/sqrt(permutations).
func runMC(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "mc",
		Title:      "Ablation — Monte-Carlo permutation count vs Shapley error",
		PaperClaim: "(extension) sampling makes n > 16 tractable; the paper computes exact 2^n for n <= 16",
	}
	const n = 12
	mach, err := machine.New(machine.XeonProfile(), machine.Pack)
	if err != nil {
		return nil, err
	}
	vms := make([]vm.VM, n)
	for i := range vms {
		vms[i] = vm.VM{Name: fmt.Sprintf("vm%d", i), Type: 0}
	}
	set, err := vm.NewSet(vm.PaperCatalog(), vms)
	if err != nil {
		return nil, err
	}
	states := make([]vm.State, n)
	for i := range states {
		gen := workload.Synthetic{Seed: cfg.Seed + int64(i)}
		states[i] = gen.StateAt(7)
	}
	oracle, err := mach.WorthFunc(set, states)
	if err != nil {
		return nil, err
	}
	var worthErr error
	worth := func(s vm.Coalition) float64 {
		p, oerr := oracle(s)
		if oerr != nil && worthErr == nil {
			worthErr = oerr
		}
		return p
	}
	table, err := shapley.Tabulate(n, worth)
	if err != nil {
		return nil, err
	}
	if worthErr != nil {
		return nil, worthErr
	}
	exact, err := shapley.ExactFromTable(n, table)
	if err != nil {
		return nil, err
	}
	tableWorth := func(s vm.Coalition) float64 { return table[s] }

	tbl := trace.NewTable("permutations", "max_rel_err", "mean_rel_err", "mean_rel_err_antithetic")
	res.Printf("%12s %14s %14s %14s", "permutations", "max rel err", "mean rel err", "mean (antith.)")
	counts := []int{8, 16, 32, 64, 128, 256, 512, 1024}
	if cfg.Quick {
		counts = []int{8, 32, 128}
	}
	errsAgainstExact := func(phi []float64) (maxE, meanE float64) {
		errs := make([]float64, n)
		for i := range errs {
			errs[i] = stats.RelativeError(phi[i], exact[i])
		}
		maxE, _ = stats.Max(errs)
		meanE, _ = stats.Mean(errs)
		return maxE, meanE
	}
	for _, perms := range counts {
		mc, err := shapley.MonteCarlo(n, tableWorth, shapley.MCOptions{Permutations: perms, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		anti, err := shapley.MonteCarlo(n, tableWorth, shapley.MCOptions{Permutations: perms, Antithetic: true, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		maxE, meanE := errsAgainstExact(mc.Phi)
		_, meanAnti := errsAgainstExact(anti.Phi)
		res.Printf("%12d %13.2f%% %13.2f%% %13.2f%%", perms, maxE*100, meanE*100, meanAnti*100)
		res.Set(fmt.Sprintf("max_err_%d", perms), maxE)
		res.Set(fmt.Sprintf("mean_err_anti_%d", perms), meanAnti)
		if err := tbl.AppendRow(float64(perms), maxE, meanE, meanAnti); err != nil {
			return nil, err
		}
	}
	res.AddTable("mc", tbl)
	return res, nil
}

// runTrainSize sweeps the offline sample count per VHC combination and
// reports the heterogeneous-coalition validation error: diminishing
// returns past ~100 samples justify the paper's short collection runs.
func runTrainSize(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "trainsize",
		Title:      "Ablation — offline training size vs VHC approximation error",
		PaperClaim: "(design choice) the paper trains from a short synthetic run per combination",
	}
	sizes := []int{8, 16, 32, 64, 128, 256}
	if cfg.Quick {
		sizes = []int{8, 32, 128}
	}
	valid := cfg.scale(160)
	tbl := trace.NewTable("samples_per_combo", "mean_rel_err", "max_rel_err")
	res.Printf("%18s %14s %14s", "samples/combo", "mean rel err", "max rel err")
	for _, m := range sizes {
		host, err := heterogeneousHost()
		if err != nil {
			return nil, err
		}
		v, err := validateVHC(host, cfg, m, valid)
		if err != nil {
			return nil, err
		}
		sum, err := stats.Summarize(v.pooled)
		if err != nil {
			return nil, err
		}
		res.Printf("%18d %13.2f%% %13.2f%%", m, sum.Mean*100, sum.Max*100)
		res.Set(fmt.Sprintf("mean_err_m%d", m), sum.Mean)
		if err := tbl.AppendRow(float64(m), sum.Mean, sum.Max); err != nil {
			return nil, err
		}
	}
	res.AddTable("trainsize", tbl)
	return res, nil
}

// runResolution sweeps the state normalizing resolution (the paper fixes
// 0.01) and reports the validation error of the heterogeneous coalition.
func runResolution(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "resolution",
		Title:      "Ablation — state normalizing resolution vs error",
		PaperClaim: "(design choice) the paper normalizes state entries at 0.01 resolution",
	}
	valid := cfg.scale(160)
	offline := cfg.scale(240)
	res.Printf("%12s %14s %14s", "resolution", "mean rel err", "max rel err")
	for _, r := range []float64{0.1, 0.01, 0.001} {
		mach, err := machine.New(machine.XeonProfile(), machine.Pack)
		if err != nil {
			return nil, err
		}
		set, err := vm.NewSet(vm.PaperCatalog(), []vm.VM{
			{Name: "VM1", Type: 0}, {Name: "VM2", Type: 1},
			{Name: "VM3", Type: 2}, {Name: "VM4", Type: 3},
		})
		if err != nil {
			return nil, err
		}
		host, err := hypervisor.NewHost(mach, set, hypervisor.WithResolution(r))
		if err != nil {
			return nil, err
		}
		v, err := validateVHC(host, cfg, offline, valid)
		if err != nil {
			return nil, err
		}
		sum, err := stats.Summarize(v.pooled)
		if err != nil {
			return nil, err
		}
		res.Printf("%12g %13.2f%% %13.2f%%", r, sum.Mean*100, sum.Max*100)
		res.Set(fmt.Sprintf("mean_err_res_%g", r), sum.Mean)
	}
	return res, nil
}

// runScheduler contrasts Pack and Spread vCPU placement on the Fig. 4
// experiment: packing sibling threads produces the paper's 46% per-VM
// model error; spreading removes the HTT interaction (the delivery effect
// remains) — evidence the phenomenon is placement-dependent.
func runScheduler(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "scheduler",
		Title:      "Ablation — scheduler policy vs the Fig. 4 phenomenon",
		PaperClaim: "(analysis) Sec. III-D attributes the error to HTT sibling sharing, i.e. to placement",
	}
	for _, policy := range []machine.SchedulerPolicy{machine.Pack, machine.Spread} {
		mach, err := machine.New(machine.XeonProfile(), policy)
		if err != nil {
			return nil, err
		}
		catalog := vm.Catalog{{ID: 0, Name: "C_VM_type", VCPUs: 1, MemoryGB: 1, DiskGB: 8}}
		set, err := vm.NewSet(catalog, []vm.VM{{Name: "C_VM", Type: 0}, {Name: "C_VM'", Type: 0}})
		if err != nil {
			return nil, err
		}
		host, err := hypervisor.NewHost(mach, set)
		if err != nil {
			return nil, err
		}
		for i := 0; i < 2; i++ {
			if err := host.Attach(vm.ID(i), workload.FloatPoint()); err != nil {
				return nil, err
			}
		}
		power := func(mask vm.Coalition) (float64, error) {
			host.SetCoalition(mask)
			host.Advance(1)
			snap := host.Collect()
			return host.DynamicPowerFor(snap.Coalition, snap.States)
		}
		first, err := power(vm.CoalitionOf(0))
		if err != nil {
			return nil, err
		}
		both, err := power(vm.CoalitionOf(0, 1))
		if err != nil {
			return nil, err
		}
		marginal2 := both - first
		relErr := (first - marginal2) / first // error vs the model's prediction, as in Fig. 4
		res.Printf("%-7s: first VM %.2f W, second %.2f W → per-VM model error %.2f%%", policy, first, marginal2, relErr*100)
		res.Set(policy.String()+"_model_error", relErr)
	}
	return res, nil
}

// runIdle contrasts the two idle-attribution rules of Sec. VIII on one
// tick of the Fig. 11 pipeline.
func runIdle(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "idle",
		Title:      "Ablation — idle-power attribution rules (Sec. VIII)",
		PaperClaim: "no commonly accepted rule; candidates are equal split and Φ-proportional split",
	}
	for _, rule := range []core.IdleAttribution{core.IdleEqual, core.IdleProportional} {
		host, err := paperHost()
		if err != nil {
			return nil, err
		}
		m, err := paperMeter(host, cfg.Seed)
		if err != nil {
			return nil, err
		}
		est, err := core.New(host, m, core.Config{
			OfflineTicksPerCombo: cfg.scale(240),
			Seed:                 cfg.Seed,
			IdleAttribution:      rule,
		})
		if err != nil {
			return nil, err
		}
		if err := est.CollectOffline(); err != nil {
			return nil, err
		}
		for i, bench := range []string{"gcc", "sjeng", "omnetpp", "wrf", "namd"} {
			gen, err := workload.ByName(bench, cfg.Seed+int64(i))
			if err != nil {
				return nil, err
			}
			if err := host.Attach(vm.ID(i), gen); err != nil {
				return nil, err
			}
		}
		host.SetCoalition(vm.GrandCoalition(host.Set().Len()))
		var alloc *core.Allocation
		if err := est.Run(cfg.scale(40), func(a *core.Allocation) bool { alloc = a; return true }); err != nil {
			return nil, err
		}
		res.Printf("rule %q (idle power %.1f W):", rule, est.IdlePower())
		var total float64
		for i, v := range host.Set().All() {
			res.Printf("  %-6s dynamic=%.2f W idle-share=%.2f W total=%.2f W",
				v.Name, alloc.PerVM[i], alloc.IdlePerVM[i], alloc.Total(vm.ID(i)))
			res.Set(rule.String()+"_idle_"+v.Name, alloc.IdlePerVM[i])
			total += alloc.Total(vm.ID(i))
		}
		res.Printf("  total attributed %.2f W vs measured %.2f W", total, alloc.MeasuredPower)
		res.Set(rule.String()+"_total", total)
	}
	return res, nil
}
