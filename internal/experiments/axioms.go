package experiments

import (
	"math"

	"vmpower/internal/core"
	"vmpower/internal/vm"
	"vmpower/internal/workload"
)

func init() {
	register(Descriptor{ID: "axioms", Title: "Analysis — which Shapley axioms survive the VHC approximation", Run: runAxioms})
}

// runAxioms audits the online allocation against the four axioms over a
// live run (Sec. IV-C's analysis, made operational). Efficiency holds by
// construction (the measured power is the grand coalition's worth).
// Symmetry across the two identical VM1s holds exactly when their states
// coincide — the class aggregation cannot tell them apart — and degrades
// gracefully with their state gap otherwise. Dummy holds exactly for
// stopped VMs. Additivity is vhc-independent (see the additivity
// experiment).
func runAxioms(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "axioms",
		Title:      "Analysis — which Shapley axioms survive the VHC approximation",
		PaperClaim: "Sec. IV-C argues the four axioms are the right requirements; the approximation must not silently break them",
	}
	host, err := paperHost()
	if err != nil {
		return nil, err
	}
	m, err := paperMeter(host, cfg.Seed)
	if err != nil {
		return nil, err
	}
	est, err := core.New(host, m, core.Config{OfflineTicksPerCombo: cfg.scale(240), Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	if err := est.CollectOffline(); err != nil {
		return nil, err
	}
	// The two VM1s run the SAME deterministic workload (identical states
	// each tick → symmetric players); VM4 stays stopped (a dummy).
	same := workload.Sjeng(cfg.Seed + 5)
	if err := host.Attach(0, same); err != nil {
		return nil, err
	}
	if err := host.Attach(1, same); err != nil {
		return nil, err
	}
	for i, bench := range []string{"omnetpp", "wrf"} {
		gen, err := workload.ByName(bench, cfg.Seed+int64(i))
		if err != nil {
			return nil, err
		}
		if err := host.Attach(vm.ID(2+i), gen); err != nil {
			return nil, err
		}
	}
	host.SetCoalition(vm.CoalitionOf(0, 1, 2, 3)) // VM4 stopped

	ticks := cfg.scale(160)
	var (
		effGapMax     float64
		symViolations int
		symGapMax     float64
		dummyViol     int
	)
	for t := 0; t < ticks; t++ {
		host.Advance(1)
		snap := host.Collect()
		sample, err := m.Sample()
		if err != nil {
			return nil, err
		}
		report, alloc, err := est.Audit(snap, sample.Power, 1e-6)
		if err != nil {
			return nil, err
		}
		if g := math.Abs(report.EfficiencyGap); g > effGapMax {
			effGapMax = g
		}
		if gap := math.Abs(alloc.PerVM[0] - alloc.PerVM[1]); gap > symGapMax {
			symGapMax = gap
		}
		if len(report.SymmetryViolations) > 0 {
			symViolations++
		}
		if alloc.PerVM[4] != 0 {
			dummyViol++
		}
	}
	res.Printf("over %d audited ticks:", ticks)
	res.Printf("  efficiency: max |ΣΦ − v(N)| = %.3g W (holds by construction)", effGapMax)
	res.Printf("  symmetry:   identical-state VM1 pair differs by at most %.3g W; %d ticks flagged at 1e-6 W tolerance", symGapMax, symViolations)
	res.Printf("  dummy:      stopped VM4 charged nonzero on %d ticks (always 0 expected)", dummyViol)
	res.Set("efficiency_gap_max", effGapMax)
	res.Set("symmetry_gap_max", symGapMax)
	res.Set("dummy_violations", float64(dummyViol))
	return res, nil
}
