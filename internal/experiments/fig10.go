package experiments

import (
	"fmt"

	"vmpower/internal/core"
	"vmpower/internal/hypervisor"
	"vmpower/internal/stats"
	"vmpower/internal/trace"
	"vmpower/internal/vhc"
	"vmpower/internal/vm"
	"vmpower/internal/workload"
)

func init() {
	register(Descriptor{ID: "fig10", Title: "Fig. 10 — accuracy of the VHC-based v(S,C) approximation", Run: runFig10})
}

// vhcValidation trains an estimator offline on a host and validates the
// VHC approximation of the full coalition's v(S,C) against the measured
// power under each SPEC benchmark. It returns the per-benchmark error
// summaries and the pooled error sample.
type vhcValidation struct {
	estimator  *core.Estimator
	perBench   map[string]stats.Summary
	benchOrder []string
	pooled     []float64
}

func validateVHC(host *hypervisor.Host, cfg Config, offlineTicks, validTicks int) (*vhcValidation, error) {
	m, err := paperMeter(host, cfg.Seed)
	if err != nil {
		return nil, err
	}
	est, err := core.New(host, m, core.Config{
		OfflineTicksPerCombo: offlineTicks,
		Seed:                 cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	if err := est.CollectOffline(); err != nil {
		return nil, err
	}

	set := host.Set()
	grand := vm.GrandCoalition(set.Len())
	v := &vhcValidation{
		estimator: est,
		perBench:  make(map[string]stats.Summary),
	}
	suite := []string{"gcc", "gobmk", "sjeng", "omnetpp", "namd", "wrf", "tonto"}
	for bi, bench := range suite {
		for i := 0; i < set.Len(); i++ {
			gen, err := workload.ByName(bench, cfg.Seed+int64(bi*100+i))
			if err != nil {
				return nil, err
			}
			if err := host.Attach(vm.ID(i), gen); err != nil {
				return nil, err
			}
		}
		host.SetCoalition(grand)
		errs := make([]float64, 0, validTicks)
		for t := 0; t < validTicks; t++ {
			host.Advance(1)
			snap := host.Collect()
			sample, err := m.Sample()
			if err != nil {
				return nil, err
			}
			measuredDyn := sample.Power - est.IdlePower()
			combo, features, err := vhc.FeaturesFor(set, snap.Coalition, snap.States)
			if err != nil {
				return nil, err
			}
			approx, err := est.Approximator().Estimate(combo, features)
			if err != nil {
				return nil, err
			}
			errs = append(errs, stats.RelativeError(approx, measuredDyn))
		}
		sum, err := stats.Summarize(errs)
		if err != nil {
			return nil, err
		}
		v.perBench[bench] = sum
		v.benchOrder = append(v.benchOrder, bench)
		v.pooled = append(v.pooled, errs...)
	}
	host.SetCoalition(vm.EmptyCoalition)
	return v, nil
}

// runFig10 reproduces Fig. 10(a)/(b)/(c): train the VHC mapping vectors on
// the synthetic workload, then validate the estimated v(S,C) of the
// homogeneous (4×VM1) and heterogeneous (VM1..VM4) coalitions against the
// measured machine power under the seven SPEC benchmarks.
func runFig10(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "fig10",
		Title:      "Fig. 10 — accuracy of the VHC-based v(S,C) approximation",
		PaperClaim: "~90% of estimations under 5% relative error; max 11.71%; per-benchmark averages below 5.33%; w1 = 9.42 (homogeneous), w = [16.98, 17.91, 23.42, 75.21] (heterogeneous)",
	}
	offline := cfg.scale(400)
	valid := cfg.scale(240)

	var allErrs []float64
	for _, c := range []struct {
		name  string
		build func() (*hypervisor.Host, error)
	}{
		{"homogeneous", homogeneousHost},
		{"heterogeneous", heterogeneousHost},
	} {
		host, err := c.build()
		if err != nil {
			return nil, err
		}
		v, err := validateVHC(host, cfg, offline, valid)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		combo := vhc.ComboFor(host.Set(), vm.GrandCoalition(host.Set().Len()))
		weights, err := v.estimator.Approximator().CPUWeights(combo)
		if err != nil {
			return nil, err
		}
		res.Printf("%s coalition: CPU mapping weights %v", c.name, roundAll(weights, 2))
		for i, w := range weights {
			res.Set(fmt.Sprintf("%s_w%d", c.name, i+1), w)
		}
		res.Printf("  %-10s %s", "benchmark", "relative error")
		for _, bench := range v.benchOrder {
			s := v.perBench[bench]
			res.Printf("  %-10s mean=%.2f%% max=%.2f%%", bench, s.Mean*100, s.Max*100)
			res.Set(fmt.Sprintf("%s_%s_mean", c.name, bench), s.Mean)
		}
		pooledSum, err := stats.Summarize(v.pooled)
		if err != nil {
			return nil, err
		}
		res.Printf("  pooled: %s", pooledSum)
		res.Set(c.name+"_mean", pooledSum.Mean)
		res.Set(c.name+"_max", pooledSum.Max)
		res.Set(c.name+"_frac_below_5pct", pooledSum.FracBelow5)
		allErrs = append(allErrs, v.pooled...)
	}

	// Fig. 10(c): the pooled error CDF.
	ecdf, err := stats.NewECDF(allErrs)
	if err != nil {
		return nil, err
	}
	cdf := trace.NewTable("rel_error", "cdf")
	for _, pt := range ecdf.Points(64) {
		if err := cdf.AppendRow(pt[0], pt[1]); err != nil {
			return nil, err
		}
	}
	res.AddTable("fig10c_cdf", cdf)
	total, err := stats.Summarize(allErrs)
	if err != nil {
		return nil, err
	}
	res.Printf("overall: %s", total)
	res.Set("overall_frac_below_5pct", total.FracBelow5)
	res.Set("overall_max", total.Max)
	res.Set("overall_mean", total.Mean)
	return res, nil
}

func roundAll(xs []float64, digits int) []float64 {
	out := make([]float64, len(xs))
	pow := 1.0
	for i := 0; i < digits; i++ {
		pow *= 10
	}
	for i, x := range xs {
		out[i] = float64(int64(x*pow+0.5)) / pow
	}
	return out
}
