package experiments

import (
	"fmt"
	"strings"

	"vmpower/internal/shapley"
	"vmpower/internal/vm"
	"vmpower/internal/workload"
)

func init() {
	register(Descriptor{ID: "interaction", Title: "Analysis — pairwise Shapley interaction: who interferes with whom", Run: runInteraction})
}

// runInteraction computes the pairwise Shapley interaction index over the
// 5-VM evaluation mix at full load. Negative entries are substitutes —
// co-located VMs that jointly draw less than their separate marginals,
// i.e. hardware interference. Every pair is negative (all VMs share the
// machine's power-delivery/turbo budget), and the interference grows with
// the pair's combined size: the VM3–VM4 pair activates the most cores
// together, so it shows the strongest interaction, while the VM1 pair's
// entry blends its sibling-hyperthread sharing with the placement shifts
// its presence causes for the larger VMs.
func runInteraction(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "interaction",
		Title:      "Analysis — pairwise Shapley interaction: who interferes with whom",
		PaperClaim: "(analysis built on Sec. III's observation) VM power interactions are pairwise-attributable with the interaction index",
	}
	host, err := paperHost()
	if err != nil {
		return nil, err
	}
	set := host.Set()
	n := set.Len()
	for i := 0; i < n; i++ {
		if err := host.Attach(vm.ID(i), workload.FloatPoint()); err != nil {
			return nil, err
		}
	}
	host.SetCoalition(vm.GrandCoalition(n))
	host.Advance(1)
	snap := host.Collect()
	oracle, err := host.Machine().WorthFunc(set, snap.States)
	if err != nil {
		return nil, err
	}
	var worthErr error
	worth := func(s vm.Coalition) float64 {
		p, oerr := oracle(s)
		if oerr != nil && worthErr == nil {
			worthErr = oerr
		}
		return p
	}
	idx, err := shapley.Interactions(n, worth)
	if err != nil {
		return nil, err
	}
	if worthErr != nil {
		return nil, worthErr
	}

	names := make([]string, n)
	for i, v := range set.All() {
		names[i] = v.Name
	}
	header := fmt.Sprintf("%-6s", "")
	for _, nm := range names {
		header += fmt.Sprintf(" %8s", nm)
	}
	res.Printf("pairwise interaction index (W; negative = interference):")
	res.Printf("%s", header)
	for i := 0; i < n; i++ {
		var row strings.Builder
		fmt.Fprintf(&row, "%-6s", names[i])
		for j := 0; j < n; j++ {
			fmt.Fprintf(&row, " %8.2f", idx[i][j])
		}
		res.Printf("%s", row.String())
	}
	res.Set("vm1_pair", idx[0][1])
	// The strongest cross-type interaction for contrast.
	weakest := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if i == 0 && j == 1 {
				continue
			}
			if idx[i][j] < weakest {
				weakest = idx[i][j]
			}
		}
	}
	res.Set("strongest_cross", weakest)
	res.Printf("all pairs interfere (negative): the big-VM pair dominates at %.2f W (shared delivery/turbo budget); the sibling-thread VM1 pair contributes %.2f W", weakest, idx[0][1])
	return res, nil
}
