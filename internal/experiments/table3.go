package experiments

import (
	"vmpower/internal/baseline"
	"vmpower/internal/machine"
	"vmpower/internal/shapley"
	"vmpower/internal/vm"
	"vmpower/internal/workload"
)

func init() {
	register(Descriptor{ID: "table3", Title: "Table III + Fig. 6 — allocation mechanisms for two identical VMs", Run: runTable3})
}

// runTable3 reproduces the paper's running example (Table III, Fig. 6):
// two identical fully busy C_VMs on the Xeon. The marginal-contribution
// rule gives (13, 7) — efficient but unfair; the per-VM power model gives
// (13, 13) — fair but inefficient (26 W vs 20 W measured); the Shapley
// value gives the ideal (10, 10).
func runTable3(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "table3",
		Title:      "Table III + Fig. 6 — allocation mechanisms for two identical VMs",
		PaperClaim: "marginal: 13/7 W (unfair); power model: 13/13 W (violates macro accuracy, 26 ≠ 20); Shapley: 10/10 W (both)",
	}
	host, err := twoCVMHost(machine.XeonProfile())
	if err != nil {
		return nil, err
	}
	for i := 0; i < 2; i++ {
		if err := host.Attach(vm.ID(i), workload.FloatPoint()); err != nil {
			return nil, err
		}
	}
	host.SetCoalition(vm.GrandCoalition(2))
	host.Advance(1)
	snap := host.Collect()
	oracle, err := host.Machine().WorthFunc(host.Set(), snap.States)
	if err != nil {
		return nil, err
	}
	var worthErr error
	worth := func(s vm.Coalition) float64 {
		p, err := oracle(s)
		if err != nil && worthErr == nil {
			worthErr = err
		}
		return p
	}

	measured := worth(vm.GrandCoalition(2))

	// Fig. 6: marginal contributions of each VM to each coalition.
	res.Printf("marginal contributions (Fig. 6):")
	for _, i := range []vm.ID{0, 1} {
		solo, err := shapley.MarginalContribution(worth, vm.EmptyCoalition, i)
		if err != nil {
			return nil, err
		}
		other := vm.CoalitionOf(1 - i)
		joining, err := shapley.MarginalContribution(worth, other, i)
		if err != nil {
			return nil, err
		}
		res.Printf("  VM%d: to ∅ = %.2f W, to %s = %.2f W", i, solo, other, joining)
	}

	// Table III rows (plus a Banzhaf comparison row beyond the paper:
	// for n = 2 it coincides with Shapley; in general it violates
	// Efficiency, which is why the paper's axioms select Shapley).
	marginal, err := baseline.MarginalAllocation([]vm.ID{0, 1}, oracle)
	if err != nil {
		return nil, err
	}
	modelPerVM := worth(vm.CoalitionOf(0)) // p = 13·u at u = 1 for each VM
	table, err := shapley.Tabulate(2, worth)
	if err != nil {
		return nil, err
	}
	phi, err := shapley.ExactFromTable(2, table)
	if err != nil {
		return nil, err
	}
	banzhaf, err := shapley.Banzhaf(2, table)
	if err != nil {
		return nil, err
	}
	if worthErr != nil {
		return nil, worthErr
	}

	res.Printf("%-24s %10s %10s %10s %10s", "mechanism", "C_VM", "C_VM'", "sum", "measured")
	res.Printf("%-24s %10.2f %10.2f %10.2f %10.2f", "marginal contribution", marginal[0], marginal[1], marginal[0]+marginal[1], measured)
	res.Printf("%-24s %10.2f %10.2f %10.2f %10.2f", "power model", modelPerVM, modelPerVM, 2*modelPerVM, measured)
	res.Printf("%-24s %10.2f %10.2f %10.2f %10.2f", "Shapley value", phi[0], phi[1], phi[0]+phi[1], measured)
	res.Printf("%-24s %10.2f %10.2f %10.2f %10.2f", "Banzhaf value (extra)", banzhaf[0], banzhaf[1], banzhaf[0]+banzhaf[1], measured)

	res.Set("measured", measured)
	res.Set("marginal_first", marginal[0])
	res.Set("marginal_second", marginal[1])
	res.Set("model_per_vm", modelPerVM)
	res.Set("shapley_first", phi[0])
	res.Set("shapley_second", phi[1])
	return res, nil
}
