// Package experiments reproduces every table and figure of the paper's
// evaluation plus the ablations DESIGN.md calls out. Each experiment is a
// pure function of a Config returning a structured Result that
// cmd/experiments renders, tests assert on, and the root bench harness
// times. The per-experiment index lives in DESIGN.md §4.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"vmpower/internal/hypervisor"
	"vmpower/internal/machine"
	"vmpower/internal/meter"
	"vmpower/internal/trace"
	"vmpower/internal/vm"
)

// Config controls an experiment run.
type Config struct {
	// Seed drives all randomness (workloads, meter noise, Monte Carlo).
	Seed int64
	// Quick shrinks tick counts by ~8x so the full suite runs in seconds
	// (used by tests); headline numbers use the full durations.
	Quick bool
}

// scale shrinks a tick count in Quick mode, keeping a sane floor.
func (c Config) scale(ticks int) int {
	if !c.Quick {
		return ticks
	}
	s := ticks / 8
	if s < 20 {
		s = 20
	}
	return s
}

// Result is a structured experiment outcome.
type Result struct {
	// ID and Title identify the experiment ("fig4", "Fig. 4 — ...").
	ID    string
	Title string
	// PaperClaim states what the paper reports for this artifact.
	PaperClaim string
	// Lines is the formatted body (tables, rows, series summaries).
	Lines []string
	// Values exposes the key metrics by name for tests and EXPERIMENTS.md.
	Values map[string]float64
	// Tables holds the regenerated figure data keyed by name, for CSV
	// export.
	Tables map[string]*trace.Table
}

// Printf appends a formatted line to the result body.
func (r *Result) Printf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// Set records a named metric.
func (r *Result) Set(name string, v float64) {
	if r.Values == nil {
		r.Values = make(map[string]float64)
	}
	r.Values[name] = v
}

// AddTable attaches a named data table.
func (r *Result) AddTable(name string, t *trace.Table) {
	if r.Tables == nil {
		r.Tables = make(map[string]*trace.Table)
	}
	r.Tables[name] = t
}

// Format renders the result as text.
func (r *Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s: %s ===\n", r.ID, r.Title)
	if r.PaperClaim != "" {
		fmt.Fprintf(&sb, "paper: %s\n", r.PaperClaim)
	}
	for _, l := range r.Lines {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	if len(r.Values) > 0 {
		keys := make([]string, 0, len(r.Values))
		for k := range r.Values {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sb.WriteString("metrics:")
		for _, k := range keys {
			fmt.Fprintf(&sb, " %s=%.6g", k, r.Values[k])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Runner executes one experiment.
type Runner func(Config) (*Result, error)

// Descriptor registers an experiment.
type Descriptor struct {
	ID    string
	Title string
	Run   Runner
}

var (
	registryMu sync.Mutex
	registry   []Descriptor
)

// register adds an experiment (called from init in each experiment file).
func register(d Descriptor) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry = append(registry, d)
}

// All returns every registered experiment in registration order.
func All() []Descriptor {
	registryMu.Lock()
	defer registryMu.Unlock()
	out := make([]Descriptor, len(registry))
	copy(out, registry)
	return out
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Descriptor, error) {
	for _, d := range All() {
		if d.ID == id {
			return d, nil
		}
	}
	return Descriptor{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// ---- shared fixtures ----

// twoCVMHost builds the Sec. III demo: two identical 1-vCPU VMs (C_VM and
// C_VM') on the given profile with Pack scheduling.
func twoCVMHost(prof machine.Profile) (*hypervisor.Host, error) {
	mach, err := machine.New(prof, machine.Pack)
	if err != nil {
		return nil, err
	}
	catalog := vm.Catalog{{ID: 0, Name: "C_VM_type", VCPUs: 1, MemoryGB: 1, DiskGB: 8}}
	set, err := vm.NewSet(catalog, []vm.VM{
		{Name: "C_VM", Type: 0},
		{Name: "C_VM'", Type: 0},
	})
	if err != nil {
		return nil, err
	}
	return hypervisor.NewHost(mach, set)
}

// paperHost builds the Sec. VII evaluation host: the Xeon prototype with
// the 5-VM mix (2×VM1, VM2, VM3, VM4) over the Table IV catalog.
func paperHost() (*hypervisor.Host, error) {
	mach, err := machine.New(machine.XeonProfile(), machine.Pack)
	if err != nil {
		return nil, err
	}
	set, err := vm.NewSet(vm.PaperCatalog(), []vm.VM{
		{Name: "VM1a", Type: 0},
		{Name: "VM1b", Type: 0},
		{Name: "VM2", Type: 1},
		{Name: "VM3", Type: 2},
		{Name: "VM4", Type: 3},
	})
	if err != nil {
		return nil, err
	}
	return hypervisor.NewHost(mach, set)
}

// homogeneousHost builds Fig. 10(a)'s coalition: four VM1-type VMs.
func homogeneousHost() (*hypervisor.Host, error) {
	mach, err := machine.New(machine.XeonProfile(), machine.Pack)
	if err != nil {
		return nil, err
	}
	set, err := vm.NewSet(vm.PaperCatalog(), []vm.VM{
		{Name: "VM1a", Type: 0}, {Name: "VM1b", Type: 0},
		{Name: "VM1c", Type: 0}, {Name: "VM1d", Type: 0},
	})
	if err != nil {
		return nil, err
	}
	return hypervisor.NewHost(mach, set)
}

// heterogeneousHost builds Fig. 10(b)'s coalition: one VM of each type.
func heterogeneousHost() (*hypervisor.Host, error) {
	mach, err := machine.New(machine.XeonProfile(), machine.Pack)
	if err != nil {
		return nil, err
	}
	set, err := vm.NewSet(vm.PaperCatalog(), []vm.VM{
		{Name: "VM1", Type: 0}, {Name: "VM2", Type: 1},
		{Name: "VM3", Type: 2}, {Name: "VM4", Type: 3},
	})
	if err != nil {
		return nil, err
	}
	return hypervisor.NewHost(mach, set)
}

// paperMeter wraps a host with the evaluation's 1 Hz meter imperfections.
func paperMeter(h *hypervisor.Host, seed int64) (*meter.SimMeter, error) {
	return meter.NewSim(h.PowerSource(), meter.SimOptions{
		NoiseStdDev: 0.25,
		Resolution:  0.1,
		Seed:        seed,
	})
}
