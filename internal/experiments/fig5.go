package experiments

import (
	"vmpower/internal/machine"
	"vmpower/internal/vm"
)

func init() {
	register(Descriptor{ID: "fig5", Title: "Fig. 5 — hyper-threading resource sharing at core level", Run: runFig5})
}

// runFig5 exposes the simulator's core-level contention mechanism behind
// Fig. 5: the power of one physical core as its two hyperthreads load up,
// and the same two threads placed on separate cores for contrast. The
// second sibling thread adds visibly less power than the first — the HTT
// "filling idle resources" effect.
func runFig5(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "fig5",
		Title:      "Fig. 5 — hyper-threading resource sharing at core level",
		PaperClaim: "two threads on one physical core share execution units, so the pair draws less than two isolated threads",
	}
	prof := machine.XeonProfile()
	packed, err := machine.New(prof, machine.Pack)
	if err != nil {
		return nil, err
	}
	spread, err := machine.New(prof, machine.Spread)
	if err != nil {
		return nil, err
	}
	mkLoads := func(u1, u2 float64) []machine.Load {
		return []machine.Load{
			{VCPUs: 1, MemoryGB: 1, DiskGB: 8, State: vm.State{vm.CPU: u1}},
			{VCPUs: 1, MemoryGB: 1, DiskGB: 8, State: vm.State{vm.CPU: u2}},
		}
	}
	res.Printf("%6s %6s %18s %18s", "u1", "u2", "same core (pack)", "two cores (spread)")
	levels := []struct{ u1, u2 float64 }{
		{0.5, 0}, {1, 0}, {1, 0.5}, {1, 1}, {0.5, 0.5},
	}
	for _, l := range levels {
		pPack, err := packed.DynamicPower(mkLoads(l.u1, l.u2))
		if err != nil {
			return nil, err
		}
		pSpread, err := spread.DynamicPower(mkLoads(l.u1, l.u2))
		if err != nil {
			return nil, err
		}
		res.Printf("%6.2f %6.2f %18.2f %18.2f", l.u1, l.u2, pPack, pSpread)
	}
	onePack, err := packed.DynamicPower(mkLoads(1, 0))
	if err != nil {
		return nil, err
	}
	twoPack, err := packed.DynamicPower(mkLoads(1, 1))
	if err != nil {
		return nil, err
	}
	res.Set("sibling_marginal", twoPack-onePack)
	res.Set("first_marginal", onePack)
	res.Printf("sibling thread adds %.2f W vs %.2f W for the first — HTT contention", twoPack-onePack, onePack)
	return res, nil
}
