package experiments

import "testing"

func TestCappingExperiment(t *testing.T) {
	res := runByID(t, "capping")
	capW := value(t, res, "cap")
	if value(t, res, "uncapped_power") <= capW {
		t.Fatal("scenario must start above the cap")
	}
	if got := value(t, res, "capped_power"); got > capW*1.1 {
		t.Fatalf("settled power %g far above cap %g", got, capW)
	}
	if got := value(t, res, "breach_fraction"); got > 0.25 {
		t.Fatalf("breach fraction = %g", got)
	}
	if got := value(t, res, "cpu_limit"); got >= 1 {
		t.Fatal("controller must have throttled the VM")
	}
}

func TestAdditivityExperiment(t *testing.T) {
	res := runByID(t, "additivity")
	if got := value(t, res, "additivity_deviation"); got > 1e-9 {
		t.Fatalf("additivity deviation = %g", got)
	}
	if got := value(t, res, "diskless_storage_share"); got != 0 {
		t.Fatalf("diskless VM storage share = %g (Dummy violated)", got)
	}
	sum := value(t, res, "total_sum")
	want := value(t, res, "expected_sum")
	if diff := sum - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("two-game efficiency: %g vs %g", sum, want)
	}
}

func TestFleetExperiment(t *testing.T) {
	res := runByID(t, "fleet")
	if got := value(t, res, "max_efficiency_gap"); got > 1e-6 {
		t.Fatalf("efficiency gap = %g", got)
	}
	// ml-corp (28 vCPUs) must out-consume the other tenants.
	ml := value(t, res, "power_ml-corp")
	if ml <= value(t, res, "power_acme") || ml <= value(t, res, "power_devshop") {
		t.Fatal("ml-corp should dominate tenant power")
	}
	if got := value(t, res, "hosts"); got < 2 {
		t.Fatalf("hosts = %g, want the pool to span >= 2 machines", got)
	}
}

func TestAxiomsExperiment(t *testing.T) {
	res := runByID(t, "axioms")
	if got := value(t, res, "efficiency_gap_max"); got > 1e-9 {
		t.Fatalf("efficiency gap = %g", got)
	}
	if got := value(t, res, "symmetry_gap_max"); got > 1e-9 {
		t.Fatalf("symmetry gap = %g", got)
	}
	if got := value(t, res, "dummy_violations"); got != 0 {
		t.Fatalf("dummy violations = %g", got)
	}
}

func TestInteractionExperiment(t *testing.T) {
	res := runByID(t, "interaction")
	// Co-located VMs are substitutes: both headline entries negative.
	if got := value(t, res, "vm1_pair"); got >= 0 {
		t.Fatalf("VM1 pair interaction = %g, want < 0", got)
	}
	strongest := value(t, res, "strongest_cross")
	if strongest >= 0 {
		t.Fatalf("strongest cross interaction = %g, want < 0", strongest)
	}
	// The big-VM pair shares the most delivery budget.
	if strongest > value(t, res, "vm1_pair") {
		t.Fatal("a cross-type pair should dominate the small sibling pair")
	}
}

func TestArbitraryExperiment(t *testing.T) {
	res := runByID(t, "arbitrary")
	// More classes must not cost sweep feasibility accounting: 2 classes
	// sweep 3 combos, 4 classes 15.
	if value(t, res, "combos_k2") != 3 || value(t, res, "combos_k4") != 15 {
		t.Fatal("combo accounting wrong")
	}
	// Every clustering level must stay usable (< 10% mean error); the
	// k-ordering itself is asserted only on full runs (EXPERIMENTS.md)
	// because Quick-mode sample counts make per-k errors noisy.
	for _, k := range []string{"mean_err_k2", "mean_err_k4"} {
		if got := value(t, res, k); got > 0.10 {
			t.Fatalf("%s = %g", k, got)
		}
	}
}
