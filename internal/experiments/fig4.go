package experiments

import (
	"fmt"

	"vmpower/internal/machine"
	"vmpower/internal/trace"
	"vmpower/internal/vm"
	"vmpower/internal/workload"
)

func init() {
	register(Descriptor{ID: "fig4", Title: "Fig. 4 — independent per-VM power model error (Pentium & Xeon)", Run: runFig4})
}

// runFig4 reproduces Sec. III-C: run the 100% floating-point job on C_VM,
// train the per-VM model p = a·u from its marginal contribution, then
// activate C_VM' as well and measure the second VM's actual marginal
// contribution. The per-VM model overestimates it by 25.22% (Pentium) and
// 46.15% (Xeon) because the sibling hyperthread shares the physical core.
func runFig4(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "fig4",
		Title:      "Fig. 4 — independent per-VM power model error (Pentium & Xeon)",
		PaperClaim: "second identical VM contributes less than the model predicts: 25.22% error on Pentium, 46.15% on Xeon (13 W model vs 7 W measured)",
	}
	for _, prof := range []machine.Profile{machine.PentiumProfile(), machine.XeonProfile()} {
		if err := fig4Profile(res, prof); err != nil {
			return nil, fmt.Errorf("profile %s: %w", prof.Name, err)
		}
	}
	return res, nil
}

func fig4Profile(res *Result, prof machine.Profile) error {
	host, err := twoCVMHost(prof)
	if err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		if err := host.Attach(vm.ID(i), workload.FloatPoint()); err != nil {
			return err
		}
	}
	phase := func(mask vm.Coalition) (float64, error) {
		host.SetCoalition(mask)
		host.Advance(1)
		snap := host.Collect()
		return host.DynamicPowerFor(snap.Coalition, snap.States)
	}

	// Phase timeline as in the figure: idle → C_VM → C_VM + C_VM'.
	idle, err := phase(vm.EmptyCoalition)
	if err != nil {
		return err
	}
	first, err := phase(vm.CoalitionOf(0))
	if err != nil {
		return err
	}
	both, err := phase(vm.CoalitionOf(0, 1))
	if err != nil {
		return err
	}
	marginalFirst := first - idle
	marginalSecond := both - first
	// Per-VM model trained on the first VM's marginal: p = marginalFirst·u.
	// The paper reports the error relative to the model's prediction
	// ("C_VM' should contribute 13 W while the measured value is only
	// 7 W" → (13−7)/13 = 46.15%).
	modelSecond := marginalFirst // at u = 1
	relErr := (modelSecond - marginalSecond) / modelSecond

	// Swap activation order — the paper observes the same phenomenon.
	firstSwap, err := phase(vm.CoalitionOf(1))
	if err != nil {
		return err
	}
	swapMarginal := firstSwap - idle

	tbl := trace.NewTable("machine_dynamic_power")
	for _, p := range []float64{idle, first, both} {
		if err := tbl.AppendRow(p); err != nil {
			return err
		}
	}
	res.AddTable("fig4_"+prof.Name, tbl)

	res.Printf("%s: first VM adds %.2f W, second adds %.2f W; per-VM model predicts %.2f W → %.2f%% error (order swapped: first adds %.2f W)",
		prof.Name, marginalFirst, marginalSecond, modelSecond, relErr*100, swapMarginal)
	res.Set(prof.Name+"_marginal_first", marginalFirst)
	res.Set(prof.Name+"_marginal_second", marginalSecond)
	res.Set(prof.Name+"_model_error", relErr)
	return nil
}
