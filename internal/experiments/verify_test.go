package experiments

import (
	"strings"
	"testing"
)

func TestBandsWellFormed(t *testing.T) {
	for _, quick := range []bool{false, true} {
		for _, b := range Bands(quick) {
			if b.Experiment == "" || b.Metric == "" || b.What == "" {
				t.Fatalf("incomplete band %+v", b)
			}
			if b.Min > b.Max {
				t.Fatalf("band %s/%s has Min > Max", b.Experiment, b.Metric)
			}
			if _, err := ByID(b.Experiment); err != nil {
				t.Fatalf("band references unknown experiment %q", b.Experiment)
			}
		}
	}
}

func TestBandContains(t *testing.T) {
	b := Band{Min: 0.2, Max: 0.5}
	if !b.Contains(0.2) || !b.Contains(0.5) || !b.Contains(0.3) {
		t.Fatal("inclusive bounds broken")
	}
	if b.Contains(0.19) || b.Contains(0.51) {
		t.Fatal("out-of-band accepted")
	}
}

func TestVerifyQuick(t *testing.T) {
	results, pass, err := Verify(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Bands(true)) {
		t.Fatalf("got %d results for %d bands", len(results), len(Bands(true)))
	}
	if !pass {
		t.Fatalf("quick verification failed:\n%s", FormatVerification(results))
	}
	text := FormatVerification(results)
	if !strings.Contains(text, "PASS") || strings.Contains(text, "FAIL") {
		t.Fatalf("unexpected verification text:\n%s", text)
	}
}

func TestVerifyReportsMissingMetric(t *testing.T) {
	// A synthetic band against a real experiment but a bogus metric must
	// surface as an error result, not a panic.
	out := FormatVerification([]VerifyResult{{
		Band: Band{Experiment: "fig4", Metric: "bogus", What: "x"},
		Err:  errBogus,
	}})
	if !strings.Contains(out, "ERROR") {
		t.Fatalf("error rows must render as ERROR:\n%s", out)
	}
}

var errBogus = &bogusError{}

type bogusError struct{}

func (*bogusError) Error() string { return "bogus" }
