package experiments

import (
	"vmpower/internal/baseline"
	"vmpower/internal/vm"
)

func init() {
	register(Descriptor{ID: "table4", Title: "Table IV — per-type VM power models trained in isolation", Run: runTable4})
}

// runTable4 trains the paper's Table IV per-type power models p = a·u:
// each VM type runs alone on the Xeon prototype under the synthetic
// workload and its marginal power is regressed on CPU utilization. The
// paper's coefficients (13.15, 22.53, 50.26, 96.99) grow sublinearly in
// vCPU count; the simulator reproduces that sublinearity (HTT pairing and
// the turbo/delivery effect make each additional vCPU cheaper).
func runTable4(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "table4",
		Title:      "Table IV — per-type VM power models trained in isolation",
		PaperClaim: "p = 13.15u / 22.53u / 50.26u / 96.99u for 1/2/4/8-vCPU types — sublinear in vCPUs",
	}
	host, err := paperHost()
	if err != nil {
		return nil, err
	}
	model, err := baseline.Train(host, baseline.TrainOptions{Ticks: cfg.scale(240), Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	catalog := host.Set().Catalog()
	res.Printf("%-6s %6s %8s %6s %16s %18s", "type", "vCPU", "mem GB", "disk", "power model", "W per vCPU")
	for _, t := range catalog {
		a := model.CoefByType[t.ID]
		perVCPU := a / float64(t.VCPUs)
		res.Printf("%-6s %6d %8d %6d %11.2f·u %18.2f", t.Name, t.VCPUs, t.MemoryGB, t.DiskGB, a, perVCPU)
		res.Set("coef_"+t.Name, a)
		res.Set("per_vcpu_"+t.Name, perVCPU)
	}
	res.Set("sublinearity", model.CoefByType[vm.TypeID(3)]/(8*model.CoefByType[vm.TypeID(0)]))
	res.Printf("8-vCPU coefficient is %.0f%% of 8× the 1-vCPU coefficient (paper: %.0f%%)",
		100*model.CoefByType[3]/(8*model.CoefByType[0]), 100*96.99/(8*13.15))
	return res, nil
}
