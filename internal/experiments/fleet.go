package experiments

import (
	"sort"

	"vmpower/internal/fleet"
	"vmpower/internal/trace"
)

func init() {
	register(Descriptor{ID: "fleet", Title: "Extension — datacenter-scale accounting across a host pool", Run: runFleet})
}

// runFleet scales the pipeline to a pool of machines: ten VMs from three
// tenants are consolidated onto three hosts (first-fit decreasing), each
// host is metered and disaggregated independently, and per-tenant
// datacenter power is the sum of per-host Shapley shares (Additivity
// across independent games). The roll-up must stay exactly efficient:
// tenant power sums to the pool's idle-deducted power every tick.
func runFleet(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "fleet",
		Title:      "Extension — datacenter-scale accounting across a host pool",
		PaperClaim: "(Sec. I context) datacenter-wide per-tenant power from independently accounted machines",
	}
	reqs := []fleet.VMRequest{
		{Name: "web-1", Tenant: "acme", Type: 0, Workload: "gcc", WorkloadSeed: cfg.Seed + 1},
		{Name: "web-2", Tenant: "acme", Type: 0, Workload: "gcc", WorkloadSeed: cfg.Seed + 2},
		{Name: "api", Tenant: "acme", Type: 1, Workload: "omnetpp", WorkloadSeed: cfg.Seed + 3},
		{Name: "train-1", Tenant: "ml-corp", Type: 3, Workload: "namd", WorkloadSeed: cfg.Seed + 4},
		{Name: "train-2", Tenant: "ml-corp", Type: 3, Workload: "namd", WorkloadSeed: cfg.Seed + 5},
		{Name: "train-3", Tenant: "ml-corp", Type: 3, Workload: "namd", WorkloadSeed: cfg.Seed + 6},
		{Name: "etl", Tenant: "ml-corp", Type: 2, Workload: "wrf", WorkloadSeed: cfg.Seed + 7},
		{Name: "ci-1", Tenant: "devshop", Type: 1, Workload: "sjeng", WorkloadSeed: cfg.Seed + 8},
		{Name: "ci-2", Tenant: "devshop", Type: 1, Workload: "gobmk", WorkloadSeed: cfg.Seed + 9},
		{Name: "cache", Tenant: "devshop", Type: 0, Workload: "tonto", WorkloadSeed: cfg.Seed + 10},
	}
	f, err := fleet.New(fleet.Config{
		Hosts:            3,
		Seed:             cfg.Seed,
		MeterNoise:       0.25, // 0 now means noiseless; keep the old default explicitly
		CalibrationTicks: cfg.scale(240),
	}, reqs)
	if err != nil {
		return nil, err
	}
	if err := f.Calibrate(); err != nil {
		return nil, err
	}

	ticks := cfg.scale(120)
	tbl := trace.NewTable("measured_total", "dynamic_total", "acme", "ml-corp", "devshop")
	var last *fleet.Tick
	var maxGap float64
	var innerErr error
	if err := f.Run(ticks, func(tk *fleet.Tick) bool {
		last = tk
		var sum float64
		for _, w := range tk.PerVM {
			sum += w
		}
		if gap := abs(sum - tk.DynamicTotal); gap > maxGap {
			maxGap = gap
		}
		innerErr = tbl.AppendRow(tk.MeasuredTotal, tk.DynamicTotal,
			tk.PerTenant["acme"], tk.PerTenant["ml-corp"], tk.PerTenant["devshop"])
		return innerErr == nil
	}); err != nil {
		return nil, err
	}
	if innerErr != nil {
		return nil, innerErr
	}
	res.AddTable("fleet", tbl)

	res.Printf("%d VMs on %d hosts; final tick: pool draws %.1f W (%.1f W above idle)",
		len(reqs), f.Hosts(), last.MeasuredTotal, last.DynamicTotal)
	tenants := make([]string, 0, len(last.PerTenant))
	for tn := range last.PerTenant {
		tenants = append(tenants, tn)
	}
	sort.Strings(tenants)
	energy := f.EnergyWhByTenant()
	res.Printf("%-10s %14s %14s", "tenant", "power (W)", "energy (Wh)")
	for _, tn := range tenants {
		res.Printf("%-10s %14.2f %14.4f", tn, last.PerTenant[tn], energy[tn])
		res.Set("power_"+tn, last.PerTenant[tn])
		res.Set("energy_wh_"+tn, energy[tn])
	}
	res.Printf("max per-tick efficiency gap across the pool: %.3g W", maxGap)
	res.Set("hosts", float64(f.Hosts()))
	res.Set("max_efficiency_gap", maxGap)
	return res, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
