package experiments

import (
	"fmt"
	"math"
	"strings"
)

// Band is one calibration contract from DESIGN.md §5: a metric of an
// experiment must land inside [Min, Max] for the reproduction to count.
type Band struct {
	Experiment string
	Metric     string
	Min, Max   float64
	// What states the paper-facing meaning of the band.
	What string
}

// Contains reports whether v satisfies the band.
func (b Band) Contains(v float64) bool {
	return !math.IsNaN(v) && v >= b.Min && v <= b.Max
}

// Bands returns the calibration contract. quick loosens the bands that
// depend on sample size (Quick mode runs ~8x fewer ticks).
func Bands(quick bool) []Band {
	bands := []Band{
		{Experiment: "fig1", Metric: "extra_energy_pct", Min: 25, Max: 42,
			What: "user B uses ~33% more energy (paper: 33%)"},
		{Experiment: "fig3", Metric: "mean_rel_err", Min: 0, Max: 0.05,
			What: "whole-machine model error low single digits (paper: 2.07%)"},
		{Experiment: "fig4", Metric: "pentium_model_error", Min: 0.20, Max: 0.31,
			What: "Pentium per-VM model error (paper: 25.22%)"},
		{Experiment: "fig4", Metric: "xeon16_model_error", Min: 0.40, Max: 0.52,
			What: "Xeon per-VM model error (paper: 46.15%)"},
		{Experiment: "table3", Metric: "shapley_first", Min: 9.5, Max: 10.5,
			What: "Shapley splits the 20 W pair 10/10 (paper: 10 W)"},
		{Experiment: "fig7", Metric: "scenario_a_vm1_decline_shapley", Min: 0, Max: 0,
			What: "Shapley never dings the non-competing bystander"},
		{Experiment: "table4", Metric: "sublinearity", Min: 0.3, Max: 0.99,
			What: "per-type coefficients sublinear in vCPUs (paper: 0.92)"},
		{Experiment: "fig10", Metric: "overall_frac_below_5pct", Min: 0.75, Max: 1,
			What: "v(S,C) approximation <5% error for ~90% of ticks (paper: ~90%)"},
		{Experiment: "fig10", Metric: "overall_max", Min: 0, Max: 0.20,
			What: "max approximation error ~12% (paper: 11.71%)"},
		{Experiment: "fig11", Metric: "model_mean_rel_err", Min: 0.30, Max: 0.95,
			What: "power-model aggregate error tens of percent (paper: 56.43%)"},
		{Experiment: "fig11", Metric: "shapley_max_rel_err", Min: 0, Max: 1e-9,
			What: "Shapley aggregate exactly matches the meter (Efficiency)"},
		{Experiment: "headline", Metric: "frac_below_5pct", Min: 0.5, Max: 1,
			What: "non-det. vs exact Shapley <5% for most estimates (paper: 90%)"},
		{Experiment: "axioms", Metric: "efficiency_gap_max", Min: 0, Max: 1e-9,
			What: "audited efficiency gap exactly zero"},
		{Experiment: "axioms", Metric: "dummy_violations", Min: 0, Max: 0,
			What: "stopped VMs always charged zero"},
		{Experiment: "additivity", Metric: "additivity_deviation", Min: 0, Max: 1e-9,
			What: "two-game additivity exact"},
		{Experiment: "capping", Metric: "breach_fraction", Min: 0, Max: 0.25,
			What: "capped VM respects its budget after settling"},
	}
	if !quick {
		// Tighter full-run bands.
		for i := range bands {
			switch {
			case bands[i].Experiment == "fig10" && bands[i].Metric == "overall_frac_below_5pct":
				bands[i].Min = 0.85
			case bands[i].Experiment == "headline" && bands[i].Metric == "frac_below_5pct":
				bands[i].Min = 0.7
			case bands[i].Experiment == "capping" && bands[i].Metric == "breach_fraction":
				bands[i].Max = 0.1
			}
		}
	}
	return bands
}

// VerifyResult is the outcome of one band check.
type VerifyResult struct {
	Band  Band
	Value float64
	Pass  bool
	Err   error
}

// Verify runs every banded experiment once and checks its metrics. It
// returns all results plus an overall pass flag; experiments are run at
// most once each even when several bands reference them.
func Verify(cfg Config) ([]VerifyResult, bool, error) {
	bands := Bands(cfg.Quick)
	cache := make(map[string]*Result)
	errs := make(map[string]error)
	var out []VerifyResult
	allPass := true
	for _, b := range bands {
		res, ok := cache[b.Experiment]
		if !ok {
			if prevErr, bad := errs[b.Experiment]; bad {
				out = append(out, VerifyResult{Band: b, Err: prevErr})
				allPass = false
				continue
			}
			d, err := ByID(b.Experiment)
			if err != nil {
				return nil, false, err
			}
			res, err = d.Run(cfg)
			if err != nil {
				errs[b.Experiment] = err
				out = append(out, VerifyResult{Band: b, Err: err})
				allPass = false
				continue
			}
			cache[b.Experiment] = res
		}
		v, ok := res.Values[b.Metric]
		if !ok {
			out = append(out, VerifyResult{Band: b, Err: fmt.Errorf("experiments: %s has no metric %q", b.Experiment, b.Metric)})
			allPass = false
			continue
		}
		pass := b.Contains(v)
		if !pass {
			allPass = false
		}
		out = append(out, VerifyResult{Band: b, Value: v, Pass: pass})
	}
	return out, allPass, nil
}

// FormatVerification renders a verification run as text.
func FormatVerification(results []VerifyResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s %-12s %-32s %14s %24s\n", "status", "experiment", "metric", "value", "band")
	for _, r := range results {
		status := "PASS"
		switch {
		case r.Err != nil:
			status = "ERROR"
		case !r.Pass:
			status = "FAIL"
		}
		if r.Err != nil {
			fmt.Fprintf(&sb, "%-6s %-12s %-32s %14s %24s  (%v)\n", status, r.Band.Experiment, r.Band.Metric, "-", "-", r.Err)
			continue
		}
		fmt.Fprintf(&sb, "%-6s %-12s %-32s %14.6g %11.4g..%-11.4g  %s\n",
			status, r.Band.Experiment, r.Band.Metric, r.Value, r.Band.Min, r.Band.Max, r.Band.What)
	}
	return sb.String()
}
