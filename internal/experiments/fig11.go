package experiments

import (
	"vmpower/internal/baseline"
	"vmpower/internal/core"
	"vmpower/internal/hypervisor"
	"vmpower/internal/stats"
	"vmpower/internal/trace"
	"vmpower/internal/vm"
	"vmpower/internal/workload"
)

func init() {
	register(Descriptor{ID: "fig11", Title: "Fig. 11 — aggregated power: Shapley vs power model", Run: runFig11})
	register(Descriptor{ID: "fig12", Title: "Fig. 12 — per-VM allocations under three policies", Run: runFig12})
}

// fig11Pipeline is the shared Sec. VII-C setup: the 5-VM paper host with
// trained VHC approximator and per-type power models, running a SPEC mix.
type fig11Pipeline struct {
	host      *hypervisor.Host
	estimator *core.Estimator
	model     *baseline.PowerModel
	benches   []string
}

func newFig11Pipeline(cfg Config) (*fig11Pipeline, error) {
	host, err := paperHost()
	if err != nil {
		return nil, err
	}
	m, err := paperMeter(host, cfg.Seed)
	if err != nil {
		return nil, err
	}
	est, err := core.New(host, m, core.Config{
		OfflineTicksPerCombo: cfg.scale(400),
		Seed:                 cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	if err := est.CollectOffline(); err != nil {
		return nil, err
	}
	model, err := baseline.Train(host, baseline.TrainOptions{Ticks: cfg.scale(240), Seed: cfg.Seed + 17})
	if err != nil {
		return nil, err
	}
	p := &fig11Pipeline{
		host:      host,
		estimator: est,
		model:     model,
		benches:   []string{"gcc", "sjeng", "omnetpp", "wrf", "namd"},
	}
	for i, bench := range p.benches {
		gen, err := workload.ByName(bench, cfg.Seed+int64(900+i))
		if err != nil {
			return nil, err
		}
		if err := host.Attach(vm.ID(i), gen); err != nil {
			return nil, err
		}
	}
	host.SetCoalition(vm.GrandCoalition(host.Set().Len()))
	return p, nil
}

// runFig11 reproduces Fig. 11: over a SPEC mix on the 5-VM host, the sum
// of power-model estimates overshoots the measured (idle-deducted) power
// badly (the paper reports 56.43% average relative error), while the
// Shapley allocation sums exactly to the measurement (Efficiency).
func runFig11(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "fig11",
		Title:      "Fig. 11 — aggregated power: Shapley vs power model",
		PaperClaim: "power model violates macro-level accuracy with 56.43% average relative error; Shapley estimates always match the measurement",
	}
	p, err := newFig11Pipeline(cfg)
	if err != nil {
		return nil, err
	}
	ticks := cfg.scale(400)
	tbl := trace.NewTable("measured_dynamic", "shapley_sum", "model_sum")
	var (
		modelErrs, shapleyErrs []float64
		innerErr               error
	)
	err = p.estimator.Run(ticks, func(alloc *core.Allocation) bool {
		var shapleySum float64
		for _, phi := range alloc.PerVM {
			shapleySum += phi
		}
		cur := p.host.Collect()
		modelSum, merr := p.model.AggregateEstimate(p.host.Set(), cur.Coalition, cur.States)
		if merr != nil {
			innerErr = merr
			return false
		}
		modelErrs = append(modelErrs, stats.RelativeError(modelSum, alloc.DynamicPower))
		shapleyErrs = append(shapleyErrs, stats.RelativeError(shapleySum, alloc.DynamicPower))
		innerErr = tbl.AppendRow(alloc.DynamicPower, shapleySum, modelSum)
		return innerErr == nil
	})
	if err == nil {
		err = innerErr
	}
	if err != nil {
		return nil, err
	}
	res.AddTable("fig11", tbl)
	modelSum, err := stats.Summarize(modelErrs)
	if err != nil {
		return nil, err
	}
	shapSum, err := stats.Summarize(shapleyErrs)
	if err != nil {
		return nil, err
	}
	res.Printf("power-model aggregate error: %s", modelSum)
	res.Printf("Shapley aggregate error:     %s", shapSum)
	res.Set("model_mean_rel_err", modelSum.Mean)
	res.Set("shapley_mean_rel_err", shapSum.Mean)
	res.Set("shapley_max_rel_err", shapSum.Max)
	return res, nil
}

// runFig12 reproduces Fig. 12: a single sampled tick's per-VM allocation
// under the three policies. Resource-usage-based allocation preserves the
// power model's proportions but rescales them to the measurement; Shapley
// allocates differently because it prices each VM's marginal interactions.
func runFig12(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "fig12",
		Title:      "Fig. 12 — per-VM allocations under three policies",
		PaperClaim: "usage-based allocation keeps the power model's proportions; Shapley differs (and is fairer per Sec. IV-B)",
	}
	p, err := newFig11Pipeline(cfg)
	if err != nil {
		return nil, err
	}
	// Advance into the run and take one sample tick.
	var alloc *core.Allocation
	if err := p.estimator.Run(cfg.scale(120), func(a *core.Allocation) bool {
		alloc = a
		return true
	}); err != nil {
		return nil, err
	}
	snap := p.host.Collect()
	set := p.host.Set()
	modelPer, err := p.model.Estimate(set, snap.Coalition, snap.States)
	if err != nil {
		return nil, err
	}
	usagePer, err := baseline.Proportional(set, snap.Coalition, snap.States, p.model, alloc.DynamicPower)
	if err != nil {
		return nil, err
	}
	res.Printf("measured aggregated power (idle deducted): %.2f W", alloc.DynamicPower)
	res.Printf("%-8s %10s %10s %10s %12s", "VM", "shapley", "usage", "model", "workload")
	var shapSum, usageSum, modelSum float64
	for i, v := range set.All() {
		res.Printf("%-8s %10.2f %10.2f %10.2f %12s", v.Name, alloc.PerVM[i], usagePer[i], modelPer[i], p.benches[i])
		res.Set("shapley_"+v.Name, alloc.PerVM[i])
		res.Set("usage_"+v.Name, usagePer[i])
		res.Set("model_"+v.Name, modelPer[i])
		shapSum += alloc.PerVM[i]
		usageSum += usagePer[i]
		modelSum += modelPer[i]
	}
	res.Printf("%-8s %10.2f %10.2f %10.2f", "sum", shapSum, usageSum, modelSum)
	res.Set("measured", alloc.DynamicPower)
	res.Set("shapley_sum", shapSum)
	res.Set("usage_sum", usageSum)
	res.Set("model_sum", modelSum)
	return res, nil
}
