package experiments

import (
	"vmpower/internal/stats"
	"vmpower/internal/vm"
	"vmpower/internal/workload"
)

func init() {
	register(Descriptor{ID: "table5", Title: "Table V — workload catalog and induced utilization profiles", Run: runTable5})
}

// runTable5 regenerates the paper's workload catalog (Table V) and
// characterises each generator's induced CPU utilization so the
// variability classes are visible: mean, spread, min/max over a window.
func runTable5(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "table5",
		Title:      "Table V — workload catalog and induced utilization profiles",
		PaperClaim: "SPECint (gcc, gobmk, sjeng, omnetpp) + SPECfp (namd, wrf, tonto) validate; the synthetic benchmark measures v(S,C)",
	}
	window := cfg.scale(600)
	res.Printf("%-12s %8s %8s %8s %8s %8s", "workload", "meanCPU", "std", "min", "max", "meanMem")
	for _, name := range workload.Names() {
		gen, err := workload.ByName(name, cfg.Seed)
		if err != nil {
			return nil, err
		}
		cpu := make([]float64, 0, window)
		mem := make([]float64, 0, window)
		for t := 0; t < window; t++ {
			s := gen.StateAt(t)
			cpu = append(cpu, s[vm.CPU])
			mem = append(mem, s[vm.Memory])
		}
		mean, err := stats.Mean(cpu)
		if err != nil {
			return nil, err
		}
		std, err := stats.StdDev(cpu)
		if err != nil {
			return nil, err
		}
		minV, _ := stats.Min(cpu)
		maxV, _ := stats.Max(cpu)
		meanMem, _ := stats.Mean(mem)
		res.Printf("%-12s %8.3f %8.3f %8.3f %8.3f %8.3f", name, mean, std, minV, maxV, meanMem)
		res.Set("mean_cpu_"+name, mean)
		res.Set("std_cpu_"+name, std)
	}
	return res, nil
}
