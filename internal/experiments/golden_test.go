package experiments

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden experiment outputs")

// goldenExperiments are the seeded runs pinned byte-for-byte: the paper's
// headline error figures (Fig. 3/4) and the fitted model coefficients
// (Table IV). Any drift in the simulation, calibration or solver shows up
// here as a diff against results/golden/<id>.json; run
// `go test ./internal/experiments/ -run TestGolden -update` after an
// intentional change.
var goldenExperiments = []string{"fig3", "fig4", "table4"}

const goldenConfigNote = "seed=1 quick=true"

func goldenPath(t *testing.T, id string) string {
	t.Helper()
	// The golden files live in the repo, not the test's temp dir.
	return filepath.Join("..", "..", "results", "golden", id+".json")
}

// goldenFile is the on-disk schema: the config the values were produced
// under plus the experiment's metric map.
type goldenFile struct {
	Config string             `json:"config"`
	Values map[string]float64 `json:"values"`
}

func TestGoldenExperimentOutputs(t *testing.T) {
	for _, id := range goldenExperiments {
		t.Run(id, func(t *testing.T) {
			d, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			res, err := d.Run(Config{Seed: 1, Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Values) == 0 {
				t.Fatalf("%s produced no values to pin", id)
			}
			for name, v := range res.Values {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s: value %q is %g", id, name, v)
				}
			}

			path := goldenPath(t, id)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				blob, err := marshalGolden(goldenFile{Config: goldenConfigNote, Values: res.Values})
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, blob, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s", path)
				return
			}

			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			var want goldenFile
			if err := json.Unmarshal(blob, &want); err != nil {
				t.Fatalf("corrupt golden file %s: %v", path, err)
			}
			if want.Config != goldenConfigNote {
				t.Fatalf("golden file pinned under %q, test runs %q", want.Config, goldenConfigNote)
			}
			for name, w := range want.Values {
				g, ok := res.Values[name]
				if !ok {
					t.Errorf("%s: metric %q disappeared", id, name)
					continue
				}
				// Relative-absolute hybrid tolerance: the runs are fully
				// seeded, so agreement should be exact up to float
				// formatting; 1e-9 relative absorbs JSON round-tripping.
				if diff := math.Abs(g - w); diff > 1e-9*math.Max(1, math.Max(math.Abs(g), math.Abs(w))) {
					t.Errorf("%s: metric %q drifted: golden %v, got %v", id, name, w, g)
				}
			}
			for name := range res.Values {
				if _, ok := want.Values[name]; !ok {
					t.Errorf("%s: new metric %q not pinned (run with -update)", id, name)
				}
			}
		})
	}
}

// marshalGolden renders the golden file with sorted keys and stable
// indentation so diffs are reviewable.
func marshalGolden(g goldenFile) ([]byte, error) {
	keys := make([]string, 0, len(g.Values))
	for k := range g.Values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf := []byte("{\n  \"config\": " + fmt.Sprintf("%q", g.Config) + ",\n  \"values\": {\n")
	for i, k := range keys {
		v, err := json.Marshal(g.Values[k])
		if err != nil {
			return nil, err
		}
		comma := ","
		if i == len(keys)-1 {
			comma = ""
		}
		buf = append(buf, []byte(fmt.Sprintf("    %q: %s%s\n", k, v, comma))...)
	}
	buf = append(buf, []byte("  }\n}\n")...)
	return buf, nil
}
