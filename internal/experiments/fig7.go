package experiments

import (
	"fmt"

	"vmpower/internal/shapley"
	"vmpower/internal/vm"
)

func init() {
	register(Descriptor{ID: "fig7", Title: "Fig. 7 — fairness of Shapley vs resource-usage allocation", Run: runFig7})
}

// fig7Game is one of the paper's Fig. 7 competition scenarios, built as an
// explicit worth function over three VMs with standalone powers p_i and
// pairwise competition declines.
type fig7Game struct {
	name string
	// standalone powers of VM1..VM3.
	p [3]float64
	// decline[i][j] is the power lost when VMs i and j co-run (i < j).
	decline map[[2]int]float64
}

func (g fig7Game) worth(s vm.Coalition) float64 {
	var total float64
	for _, id := range s.Members() {
		total += g.p[int(id)]
	}
	for pair, d := range g.decline {
		if s.Contains(vm.ID(pair[0])) && s.Contains(vm.ID(pair[1])) {
			total -= d
		}
	}
	return total
}

// runFig7 reproduces the Fig. 7 analysis: when VMs compete pairwise,
// resource-usage-based rescaling spreads the decline across every VM —
// including non-competitors — while the Shapley value charges the decline
// only to the VMs whose competition caused it.
func runFig7(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "fig7",
		Title:      "Fig. 7 — fairness of Shapley vs resource-usage allocation",
		PaperClaim: "(a) VM1 makes no contribution to the VM2–VM3 competition yet usage-based allocation dings it; (b) VM1's competition with VM2 costs 1 W but usage-based allocation charges it 1.1 W",
	}
	games := []fig7Game{
		{
			name:    "a",
			p:       [3]float64{5, 4, 3},
			decline: map[[2]int]float64{{1, 2}: 1}, // VM2 and VM3 compete
		},
		{
			name: "b",
			p:    [3]float64{5, 4, 3},
			decline: map[[2]int]float64{
				{0, 1}: 1,   // VM1 and VM2 compete: 1 W
				{1, 2}: 1.5, // VM2 and VM3 compete: 1.5 W
			},
		},
	}
	for _, g := range games {
		if err := fig7Scenario(res, g); err != nil {
			return nil, fmt.Errorf("scenario %s: %w", g.name, err)
		}
	}
	return res, nil
}

func fig7Scenario(res *Result, g fig7Game) error {
	const n = 3
	measured := g.worth(vm.GrandCoalition(n))
	phi, err := shapley.Exact(n, g.worth)
	if err != nil {
		return err
	}
	// Resource-usage-based: rescale measured power by standalone demand.
	var demand float64
	for _, p := range g.p {
		demand += p
	}
	usage := make([]float64, n)
	for i := range usage {
		usage[i] = measured * g.p[i] / demand
	}

	res.Printf("scenario (%s): standalone powers %v, measured coalition power %.2f W", g.name, g.p, measured)
	res.Printf("  %-10s %10s %10s %10s", "policy", "VM1", "VM2", "VM3")
	res.Printf("  %-10s %10.3f %10.3f %10.3f", "shapley", phi[0], phi[1], phi[2])
	res.Printf("  %-10s %10.3f %10.3f %10.3f", "usage", usage[0], usage[1], usage[2])
	res.Printf("  VM1 decline: shapley %.3f W vs usage-based %.3f W", g.p[0]-phi[0], g.p[0]-usage[0])
	res.Set("scenario_"+g.name+"_vm1_decline_shapley", g.p[0]-phi[0])
	res.Set("scenario_"+g.name+"_vm1_decline_usage", g.p[0]-usage[0])
	return nil
}
