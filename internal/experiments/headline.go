package experiments

import (
	"vmpower/internal/core"
	"vmpower/internal/shapley"
	"vmpower/internal/stats"
	"vmpower/internal/trace"
	"vmpower/internal/vm"
)

func init() {
	register(Descriptor{ID: "headline", Title: "Headline — non-deterministic vs exact Shapley value", Run: runHeadline})
}

// runHeadline reproduces the abstract's headline claim: the
// non-deterministic Shapley value (VHC-approximated subset worths, the
// measured power as the grand coalition's worth) stays within 5% of the
// exact Shapley value (computed from the ground-truth worth of every
// coalition at the current states — only observable in simulation) for
// ~90% of the per-VM estimates.
func runHeadline(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "headline",
		Title:      "Headline — non-deterministic vs exact Shapley value",
		PaperClaim: "non-deterministic Shapley achieves <5% error vs exact Shapley for 90% of the time",
	}
	p, err := newFig11Pipeline(cfg)
	if err != nil {
		return nil, err
	}
	host, set := p.host, p.host.Set()
	n := set.Len()
	ticks := cfg.scale(400)

	var errs []float64
	var approxSeries, exactSeries [][]float64
	runErr := p.estimator.Run(ticks, func(alloc *core.Allocation) bool {
		snap := host.Collect()
		oracle, werr := host.Machine().WorthFunc(set, snap.States)
		if werr != nil {
			err = werr
			return false
		}
		var worthErr error
		exact, werr := shapley.Exact(n, func(s vm.Coalition) float64 {
			s &= snap.Coalition
			v, oerr := oracle(s)
			if oerr != nil && worthErr == nil {
				worthErr = oerr
			}
			return v
		})
		if werr != nil {
			err = werr
			return false
		}
		if worthErr != nil {
			err = worthErr
			return false
		}
		for i := 0; i < n; i++ {
			// Skip near-zero exact shares: relative error is undefined
			// noise there (and the paper's VMs are never idle online).
			if exact[i] < 0.5 {
				continue
			}
			errs = append(errs, stats.RelativeError(alloc.PerVM[i], exact[i]))
		}
		approxSeries = append(approxSeries, alloc.PerVM)
		exactSeries = append(exactSeries, exact)
		return true
	})
	if runErr != nil {
		return nil, runErr
	}
	if err != nil {
		return nil, err
	}

	sum, err := stats.Summarize(errs)
	if err != nil {
		return nil, err
	}
	ecdf, err := stats.NewECDF(errs)
	if err != nil {
		return nil, err
	}
	cdf := trace.NewTable("rel_error", "cdf")
	for _, pt := range ecdf.Points(64) {
		if err := cdf.AppendRow(pt[0], pt[1]); err != nil {
			return nil, err
		}
	}
	res.AddTable("headline_cdf", cdf)

	// A representative tick for inspection.
	if len(approxSeries) > 0 {
		mid := len(approxSeries) / 2
		res.Printf("sample tick: per-VM power, non-deterministic vs exact Shapley")
		for i, v := range set.All() {
			res.Printf("  %-6s approx=%.2f W exact=%.2f W", v.Name, approxSeries[mid][i], exactSeries[mid][i])
		}
	}
	res.Printf("per-VM error of non-deterministic vs exact Shapley: %s", sum)
	res.Printf("error < 5%% for %.1f%% of per-VM estimates (paper: 90%%)", sum.FracBelow5*100)
	res.Set("frac_below_5pct", sum.FracBelow5)
	res.Set("mean_rel_err", sum.Mean)
	res.Set("p90_rel_err", sum.P90)
	res.Set("max_rel_err", sum.Max)
	return res, nil
}
