package experiments

import (
	"vmpower/internal/baseline"
	"vmpower/internal/machine"
	"vmpower/internal/stats"
	"vmpower/internal/trace"
	"vmpower/internal/vm"
	"vmpower/internal/workload"
)

func init() {
	register(Descriptor{ID: "fig3", Title: "Fig. 3 — whole-machine power model over integrated VMs", Run: runFig3})
}

// runFig3 reproduces Sec. III-B: run the synthetic random-CPU benchmark on
// both C_VMs simultaneously, train the integrated whole-machine model
// p' = a·u' + idle on (total CPU, measured power) samples, and verify it
// tracks the machine power closely (the paper reports 2.07% average
// relative error and a = 9.49, idle = 138 on the Xeon).
func runFig3(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "fig3",
		Title:      "Fig. 3 — whole-machine power model over integrated VMs",
		PaperClaim: "integrated model p' = 9.49·u' + 138 tracks machine power with 2.07% average relative error",
	}
	host, err := twoCVMHost(machine.XeonProfile())
	if err != nil {
		return nil, err
	}
	m, err := paperMeter(host, cfg.Seed)
	if err != nil {
		return nil, err
	}
	for i := 0; i < host.Set().Len(); i++ {
		if err := host.Attach(vm.ID(i), workload.Synthetic{Seed: cfg.Seed + int64(i)*31}); err != nil {
			return nil, err
		}
	}
	host.SetCoalition(vm.GrandCoalition(host.Set().Len()))

	collect := func(ticks int) (cpu, power []float64, err error) {
		for t := 0; t < ticks; t++ {
			host.Advance(1)
			snap := host.Collect()
			var total float64
			for _, s := range snap.States {
				total += s[vm.CPU]
			}
			sample, err := m.Sample()
			if err != nil {
				return nil, nil, err
			}
			cpu = append(cpu, total)
			power = append(power, sample.Power)
		}
		return cpu, power, nil
	}

	trainTicks := cfg.scale(400)
	cpuTrain, powerTrain, err := collect(trainTicks)
	if err != nil {
		return nil, err
	}
	a, idle, err := baseline.FitWholeMachine(cpuTrain, powerTrain)
	if err != nil {
		return nil, err
	}

	validTicks := cfg.scale(400)
	cpuValid, powerValid, err := collect(validTicks)
	if err != nil {
		return nil, err
	}
	tbl := trace.NewTable("measured_power", "model_power")
	errs := make([]float64, 0, len(cpuValid))
	for i := range cpuValid {
		pred := a*cpuValid[i] + idle
		errs = append(errs, stats.RelativeError(pred, powerValid[i]))
		if err := tbl.AppendRow(powerValid[i], pred); err != nil {
			return nil, err
		}
	}
	res.AddTable("fig3", tbl)
	sum, err := stats.Summarize(errs)
	if err != nil {
		return nil, err
	}
	res.Printf("fitted integrated model: p' = %.2f·u' + %.1f", a, idle)
	res.Printf("validation error: %s", sum)
	res.Set("coef", a)
	res.Set("idle", idle)
	res.Set("mean_rel_err", sum.Mean)
	res.Set("max_rel_err", sum.Max)
	return res, nil
}
