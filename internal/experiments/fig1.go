package experiments

import (
	"vmpower/internal/machine"
	"vmpower/internal/pricing"
	"vmpower/internal/trace"
	"vmpower/internal/workload"
)

func init() {
	register(Descriptor{ID: "fig1", Title: "Fig. 1 — two users, same VM type, different power patterns", Run: runFig1})
}

// runFig1 reproduces the motivation scenario: users A and B rent the same
// VM type over the same period [T0, T5] but drive it at different CPU
// levels, so B consumes ~33% more energy while paying the same type-based
// bill. We replay the figure's step schedules on the Xeon machine and
// price both the flat (type-based) and the energy-based bill.
func runFig1(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "fig1",
		Title:      "Fig. 1 — two users, same VM type, different power patterns",
		PaperClaim: "user B consumes 33% more energy than user A yet pays the same type-based bill",
	}
	mach, err := machine.New(machine.XeonProfile(), machine.Pack)
	if err != nil {
		return nil, err
	}
	// The figure's six intervals T0..T5: A mostly light with one busy
	// phase; B heavy in most phases. Levels chosen so B's energy is ~1.33x.
	userA := workload.Step{Label: "userA", Levels: []float64{0.30, 0.90, 0.30, 0.60, 0.40}, Dwell: 60}
	userB := workload.Step{Label: "userB", Levels: []float64{0.90, 0.50, 0.90, 0.60, 0.725}, Dwell: 60}
	ticks := 5 * 60

	tbl := trace.NewTable("userA_power", "userB_power")
	var powerA, powerB []float64
	for _, uw := range []struct {
		gen workload.Generator
		out *[]float64
	}{{userA, &powerA}, {userB, &powerB}} {
		for t := 0; t < ticks; t++ {
			load := machine.Load{VCPUs: 1, MemoryGB: 2, DiskGB: 20, State: uw.gen.StateAt(t)}
			p, err := mach.DynamicPower([]machine.Load{load})
			if err != nil {
				return nil, err
			}
			*uw.out = append(*uw.out, p)
		}
	}
	for t := 0; t < ticks; t++ {
		if err := tbl.AppendRow(powerA[t], powerB[t]); err != nil {
			return nil, err
		}
	}
	res.AddTable("fig1", tbl)

	billA, err := pricing.BillEnergy("userA", powerA, pricing.USPricePerKWh)
	if err != nil {
		return nil, err
	}
	billB, err := pricing.BillEnergy("userB", powerB, pricing.USPricePerKWh)
	if err != nil {
		return nil, err
	}
	ratio := billB.EnergyKWh / billA.EnergyKWh
	res.Printf("user A: %s", billA)
	res.Printf("user B: %s", billB)
	res.Printf("B consumes %.1f%% more energy than A; type-based pricing bills them identically", (ratio-1)*100)
	res.Set("energy_ratio_b_over_a", ratio)
	res.Set("extra_energy_pct", (ratio-1)*100)

	return res, nil
}
