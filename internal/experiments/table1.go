package experiments

import "vmpower/internal/pricing"

func init() {
	register(Descriptor{ID: "table1", Title: "Table I — electricity vs IT hardware cost per mid-level VM-year", Run: runTable1})
}

func runTable1(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "table1",
		Title:      "Table I — electricity vs IT hardware cost per mid-level VM-year",
		PaperClaim: "electricity cost ($100.74–$105.15/yr US, $193.52–$201.94/yr DE) is chasing the 5-year-amortised IT hardware cost",
	}
	res.Printf("%-20s %12s %12s %10s %8s %8s %14s", "Instance Type", "Elec USA/yr", "Elec DE/yr", "CPU Cost", "RAM", "SSD", "HW amort./yr")
	for _, row := range pricing.TableI() {
		res.Printf("%-20s %12.2f %12.2f %10.2f %8.2f %8.2f %14.2f",
			row.Family.Name, row.ElectricityUSA, row.ElectricityDE,
			row.Family.CPUCost, row.Family.RAMCost, row.Family.SSDCost, row.HardwarePerYear)
	}
	rows := pricing.TableI()
	res.Set("general_purpose_usa", rows[0].ElectricityUSA)
	res.Set("general_purpose_de", rows[0].ElectricityDE)
	res.Set("compute_optimized_usa", rows[1].ElectricityUSA)
	// The motivating ratio: electricity as a fraction of amortised hardware.
	res.Set("elec_over_hw_general", rows[0].ElectricityUSA/rows[0].HardwarePerYear)
	return res, nil
}
