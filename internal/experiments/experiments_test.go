package experiments

import (
	"strings"
	"testing"
)

// quickCfg runs experiments at reduced tick counts. Band assertions below
// are deliberately loose: Quick mode shrinks samples ~8x, so the goal is
// "the paper's qualitative shape holds", not the full-run headline values
// (EXPERIMENTS.md records those from full runs).
var quickCfg = Config{Seed: 1, Quick: true}

func runByID(t *testing.T, id string) *Result {
	t.Helper()
	d, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(quickCfg)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if res.ID != id {
		t.Fatalf("result ID = %q", res.ID)
	}
	if res.Format() == "" {
		t.Fatal("empty formatted result")
	}
	return res
}

func value(t *testing.T, res *Result, key string) float64 {
	t.Helper()
	v, ok := res.Values[key]
	if !ok {
		t.Fatalf("%s: missing metric %q (have %v)", res.ID, key, keys(res))
	}
	return v
}

func keys(res *Result) []string {
	out := make([]string, 0, len(res.Values))
	for k := range res.Values {
		out = append(out, k)
	}
	return out
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) < 15 {
		t.Fatalf("registered %d experiments, want >= 15", len(all))
	}
	seen := map[string]bool{}
	for _, d := range all {
		if d.ID == "" || d.Title == "" || d.Run == nil {
			t.Fatalf("incomplete descriptor %+v", d)
		}
		if seen[d.ID] {
			t.Fatalf("duplicate ID %q", d.ID)
		}
		seen[d.ID] = true
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("want unknown-ID error")
	}
}

func TestTable1(t *testing.T) {
	res := runByID(t, "table1")
	if got := value(t, res, "general_purpose_usa"); got < 95 || got > 106 {
		t.Fatalf("US electricity = %g, want ~100.74", got)
	}
	if got := value(t, res, "general_purpose_de"); got < 185 || got > 200 {
		t.Fatalf("DE electricity = %g, want ~193.52", got)
	}
}

func TestFig1(t *testing.T) {
	res := runByID(t, "fig1")
	// Paper: user B uses 33% more energy.
	if got := value(t, res, "extra_energy_pct"); got < 25 || got > 42 {
		t.Fatalf("extra energy = %g%%, want ~33%%", got)
	}
}

func TestFig3(t *testing.T) {
	res := runByID(t, "fig3")
	// The integrated whole-machine model must be accurate (paper: 2.07%).
	if got := value(t, res, "mean_rel_err"); got > 0.05 {
		t.Fatalf("integrated model error = %g, want < 5%%", got)
	}
	if got := value(t, res, "idle"); got < 130 || got > 146 {
		t.Fatalf("fitted idle = %g, want ~138", got)
	}
}

func TestFig4(t *testing.T) {
	res := runByID(t, "fig4")
	if got := value(t, res, "xeon16_model_error"); got < 0.40 || got > 0.52 {
		t.Fatalf("Xeon model error = %g, want ~0.4615", got)
	}
	if got := value(t, res, "pentium_model_error"); got < 0.20 || got > 0.31 {
		t.Fatalf("Pentium model error = %g, want ~0.2522", got)
	}
	if got := value(t, res, "xeon16_marginal_first"); got < 12.5 || got > 13.5 {
		t.Fatalf("first marginal = %g, want ~13", got)
	}
	if got := value(t, res, "xeon16_marginal_second"); got < 6.5 || got > 7.5 {
		t.Fatalf("second marginal = %g, want ~7", got)
	}
}

func TestFig5(t *testing.T) {
	res := runByID(t, "fig5")
	first := value(t, res, "first_marginal")
	sibling := value(t, res, "sibling_marginal")
	if sibling >= first {
		t.Fatalf("sibling marginal %g must be below first %g", sibling, first)
	}
}

func TestTable3(t *testing.T) {
	res := runByID(t, "table3")
	// Shapley gives the ideal 10/10 split of the measured 20 W.
	if got := value(t, res, "shapley_first"); got < 9.5 || got > 10.5 {
		t.Fatalf("Shapley share = %g, want ~10", got)
	}
	s1, s2 := value(t, res, "shapley_first"), value(t, res, "shapley_second")
	if s1 != s2 {
		t.Fatalf("symmetric VMs got %g and %g", s1, s2)
	}
	m1, m2 := value(t, res, "marginal_first"), value(t, res, "marginal_second")
	if m1 <= m2 {
		t.Fatalf("marginal rule must be order-biased: %g vs %g", m1, m2)
	}
	measured := value(t, res, "measured")
	if got := s1 + s2; got < measured-0.01 || got > measured+0.01 {
		t.Fatalf("Shapley sum %g vs measured %g", got, measured)
	}
	model := value(t, res, "model_per_vm")
	if 2*model <= measured {
		t.Fatal("power model must violate macro accuracy (sum > measured)")
	}
}

func TestFig7(t *testing.T) {
	res := runByID(t, "fig7")
	// (a): the non-competing VM1 must see zero decline under Shapley but
	// a positive decline under usage-based allocation.
	if got := value(t, res, "scenario_a_vm1_decline_shapley"); got != 0 {
		t.Fatalf("Shapley dings the innocent VM1 by %g", got)
	}
	if got := value(t, res, "scenario_a_vm1_decline_usage"); got <= 0 {
		t.Fatalf("usage-based must ding VM1, got %g", got)
	}
	// (b): usage-based overcharges VM1 relative to its actual 1 W
	// pairwise competition (Shapley says 0.5 W — half the decline).
	shap := value(t, res, "scenario_b_vm1_decline_shapley")
	usage := value(t, res, "scenario_b_vm1_decline_usage")
	if usage <= shap {
		t.Fatalf("usage decline %g must exceed Shapley %g", usage, shap)
	}
}

func TestTable4(t *testing.T) {
	res := runByID(t, "table4")
	coefs := []float64{
		value(t, res, "coef_VM1"), value(t, res, "coef_VM2"),
		value(t, res, "coef_VM3"), value(t, res, "coef_VM4"),
	}
	for i := 1; i < len(coefs); i++ {
		if coefs[i] <= coefs[i-1] {
			t.Fatalf("coefficients must increase: %v", coefs)
		}
	}
	// Sublinearity (paper: 96.99 < 8×13.15).
	if got := value(t, res, "sublinearity"); got >= 1 {
		t.Fatalf("sublinearity = %g, want < 1", got)
	}
}

func TestTable5(t *testing.T) {
	res := runByID(t, "table5")
	// sjeng is the steadiest benchmark; gcc is burstier.
	if value(t, res, "std_cpu_sjeng") >= value(t, res, "std_cpu_gcc") {
		t.Fatal("sjeng must be steadier than gcc")
	}
	if got := value(t, res, "mean_cpu_idle"); got != 0 {
		t.Fatalf("idle mean CPU = %g", got)
	}
}

func TestFig10(t *testing.T) {
	res := runByID(t, "fig10")
	// The paper's operational headline: ~90% of v(S,C) estimates within
	// 5%, max error ~12%, per-benchmark means below ~5.5%. Quick mode
	// uses fewer training samples, so allow slack.
	if got := value(t, res, "overall_frac_below_5pct"); got < 0.75 {
		t.Fatalf("frac below 5%% = %g, want >= 0.75", got)
	}
	if got := value(t, res, "overall_max"); got > 0.20 {
		t.Fatalf("max error = %g, want <= 0.20", got)
	}
	if got := value(t, res, "overall_mean"); got > 0.06 {
		t.Fatalf("mean error = %g", got)
	}
	// Heterogeneous CPU weights must be ordered by VM size, like the
	// paper's [16.98, 17.91, 23.42, 75.21].
	w := []float64{
		value(t, res, "heterogeneous_w1"), value(t, res, "heterogeneous_w2"),
		value(t, res, "heterogeneous_w3"), value(t, res, "heterogeneous_w4"),
	}
	for i := 1; i < len(w); i++ {
		if w[i] <= w[i-1] {
			t.Fatalf("heterogeneous weights not increasing: %v", w)
		}
	}
}

func TestFig11(t *testing.T) {
	res := runByID(t, "fig11")
	// Power model aggregate error is large (paper: 56.43%); Shapley is
	// exactly efficient.
	if got := value(t, res, "model_mean_rel_err"); got < 0.3 {
		t.Fatalf("model aggregate error = %g, want >> 0.3", got)
	}
	if got := value(t, res, "shapley_max_rel_err"); got > 1e-9 {
		t.Fatalf("Shapley aggregate error = %g, want 0", got)
	}
}

func TestFig12(t *testing.T) {
	res := runByID(t, "fig12")
	measured := value(t, res, "measured")
	if got := value(t, res, "shapley_sum"); got < measured-1e-6 || got > measured+1e-6 {
		t.Fatalf("Shapley sum %g vs measured %g", got, measured)
	}
	if got := value(t, res, "usage_sum"); got < measured-1e-6 || got > measured+1e-6 {
		t.Fatalf("usage sum %g vs measured %g", got, measured)
	}
	if got := value(t, res, "model_sum"); got <= measured {
		t.Fatalf("model sum %g must overshoot measured %g", got, measured)
	}
	// Usage-based keeps the model's proportions (paper's observation).
	ratioUsage := value(t, res, "usage_VM4") / value(t, res, "usage_VM2")
	ratioModel := value(t, res, "model_VM4") / value(t, res, "model_VM2")
	if diff := ratioUsage/ratioModel - 1; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("usage proportions differ from model: %g vs %g", ratioUsage, ratioModel)
	}
}

func TestHeadline(t *testing.T) {
	res := runByID(t, "headline")
	// The stricter oracle comparison: most per-VM estimates within 5% of
	// exact ground-truth Shapley (paper claims 90%; our full run lands
	// ~79%, Quick mode a bit lower — assert the qualitative band).
	if got := value(t, res, "frac_below_5pct"); got < 0.5 {
		t.Fatalf("frac below 5%% = %g, want >= 0.5", got)
	}
	if got := value(t, res, "mean_rel_err"); got > 0.10 {
		t.Fatalf("mean error = %g", got)
	}
}

func TestMCAblation(t *testing.T) {
	res := runByID(t, "mc")
	// Error at 128 permutations must beat error at 8.
	if value(t, res, "max_err_128") >= value(t, res, "max_err_8") {
		t.Fatal("MC error must shrink with more permutations")
	}
}

func TestTrainsizeAblation(t *testing.T) {
	res := runByID(t, "trainsize")
	for _, k := range []string{"mean_err_m8", "mean_err_m32", "mean_err_m128"} {
		if got := value(t, res, k); got > 0.25 {
			t.Fatalf("%s = %g, implausibly large", k, got)
		}
	}
}

func TestResolutionAblation(t *testing.T) {
	res := runByID(t, "resolution")
	for _, k := range []string{"mean_err_res_0.1", "mean_err_res_0.01", "mean_err_res_0.001"} {
		if got := value(t, res, k); got > 0.25 {
			t.Fatalf("%s = %g, implausibly large", k, got)
		}
	}
}

func TestSchedulerAblation(t *testing.T) {
	res := runByID(t, "scheduler")
	pack := value(t, res, "pack_model_error")
	spread := value(t, res, "spread_model_error")
	if pack <= spread {
		t.Fatalf("pack error %g must exceed spread error %g (HTT contention)", pack, spread)
	}
}

func TestIdleAblation(t *testing.T) {
	res := runByID(t, "idle")
	// Both rules must attribute the full measured power.
	et := value(t, res, "equal_total")
	pt := value(t, res, "proportional_total")
	if diff := et - pt; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("rules attribute different totals: %g vs %g", et, pt)
	}
	// Proportional gives the big VM a larger idle share than equal does.
	if value(t, res, "proportional_idle_VM4") <= value(t, res, "equal_idle_VM4") {
		t.Fatal("proportional must charge VM4 more idle than equal")
	}
}

func TestFigureTablesAttached(t *testing.T) {
	// Experiments that regenerate figure series must attach their data
	// tables (cmd/experiments -csv writes them).
	wantTables := map[string][]string{
		"fig1":    {"fig1"},
		"fig3":    {"fig3"},
		"fig4":    {"fig4_pentium", "fig4_xeon16"},
		"fig10":   {"fig10c_cdf"},
		"fig11":   {"fig11"},
		"mc":      {"mc"},
		"capping": {"capping"},
		"fleet":   {"fleet"},
	}
	for id, tables := range wantTables {
		res := runByID(t, id)
		for _, name := range tables {
			tbl, ok := res.Tables[name]
			if !ok {
				t.Fatalf("%s: missing table %q (have %v)", id, name, tableNames(res))
			}
			if tbl.Rows() == 0 {
				t.Fatalf("%s: table %q is empty", id, name)
			}
		}
	}
}

func tableNames(res *Result) []string {
	out := make([]string, 0, len(res.Tables))
	for name := range res.Tables {
		out = append(out, name)
	}
	return out
}

func TestResultFormat(t *testing.T) {
	res := &Result{ID: "x", Title: "T", PaperClaim: "c"}
	res.Printf("line %d", 1)
	res.Set("m", 2)
	out := res.Format()
	for _, want := range []string{"=== x: T ===", "paper: c", "line 1", "m=2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
}
