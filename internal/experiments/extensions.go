package experiments

import (
	"fmt"

	"vmpower/internal/capping"
	"vmpower/internal/cluster"
	"vmpower/internal/core"
	"vmpower/internal/hypervisor"
	"vmpower/internal/machine"
	"vmpower/internal/stats"
	"vmpower/internal/trace"
	"vmpower/internal/vhc"
	"vmpower/internal/vm"
	"vmpower/internal/workload"
)

func init() {
	register(Descriptor{ID: "capping", Title: "Extension — per-VM power caps driven by Shapley shares", Run: runCapping})
	register(Descriptor{ID: "additivity", Title: "Extension — non-local storage accounting via Additivity (Sec. VIII)", Run: runAdditivity})
	register(Descriptor{ID: "arbitrary", Title: "Extension — arbitrary VM types via VHC class clustering (Sec. VIII)", Run: runArbitrary})
}

// runCapping demonstrates the introduction's motivating application:
// "VM power measurement can effectively enable power caps to be enforced
// on a per-VM basis". The controller throttles VM4's CPU ceiling until
// its attributed power obeys a 25 W cap, without touching the other VMs.
func runCapping(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "capping",
		Title:      "Extension — per-VM power caps driven by Shapley shares",
		PaperClaim: "(application from Sec. I) per-VM power capping becomes enforceable once per-VM power is measurable",
	}
	host, err := paperHost()
	if err != nil {
		return nil, err
	}
	m, err := paperMeter(host, cfg.Seed)
	if err != nil {
		return nil, err
	}
	est, err := core.New(host, m, core.Config{OfflineTicksPerCombo: cfg.scale(240), Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	if err := est.CollectOffline(); err != nil {
		return nil, err
	}
	for i, bench := range []string{"gcc", "sjeng", "omnetpp", "wrf", "namd"} {
		gen, err := workload.ByName(bench, cfg.Seed+int64(i))
		if err != nil {
			return nil, err
		}
		if err := host.Attach(vm.ID(i), gen); err != nil {
			return nil, err
		}
	}
	host.SetCoalition(vm.GrandCoalition(host.Set().Len()))

	// Uncapped baseline power of VM4.
	var uncapped float64
	warm := cfg.scale(40)
	if err := est.Run(warm, func(a *core.Allocation) bool {
		uncapped += a.PerVM[4] / float64(warm)
		return true
	}); err != nil {
		return nil, err
	}

	const capW = 25.0
	ctrl, err := capping.New(host, capping.Options{})
	if err != nil {
		return nil, err
	}
	if err := ctrl.SetCap(4, capW); err != nil {
		return nil, err
	}
	// Settle, then measure compliance and the capped mean.
	if _, err := ctrl.Run(est, cfg.scale(40)); err != nil {
		return nil, err
	}
	window := cfg.scale(160)
	var capped, others float64
	tbl := trace.NewTable("vm4_power", "cap")
	breaches := 0
	var loopErr error
	if err := est.Run(window, func(a *core.Allocation) bool {
		capped += a.PerVM[4] / float64(window)
		others += (a.PerVM[0] + a.PerVM[1] + a.PerVM[2] + a.PerVM[3]) / float64(window)
		if a.PerVM[4] > capW {
			breaches++
		}
		if _, err := ctrl.Observe(a); err != nil {
			loopErr = err
			return false
		}
		loopErr = tbl.AppendRow(a.PerVM[4], capW)
		return loopErr == nil
	}); err != nil {
		return nil, err
	}
	if loopErr != nil {
		return nil, loopErr
	}
	res.AddTable("capping", tbl)
	limit, err := host.CPULimit(4)
	if err != nil {
		return nil, err
	}
	res.Printf("VM4 uncapped: %.2f W; cap %.0f W installed", uncapped, capW)
	res.Printf("settled: VM4 mean %.2f W (CPU ceiling %.2f), %d/%d ticks above cap", capped, limit, breaches, window)
	res.Printf("other VMs draw %.2f W combined (unthrottled)", others)
	res.Set("uncapped_power", uncapped)
	res.Set("capped_power", capped)
	res.Set("cap", capW)
	res.Set("breach_fraction", float64(breaches)/float64(window))
	res.Set("cpu_limit", limit)
	return res, nil
}

// runAdditivity reproduces Sec. VIII's non-local resource scenario: VMs
// on the compute server with logic disks on a shared, saturating storage
// array. Each VM's total power is the sum of its Shapley shares in the
// compute game and the storage game — exactly what the Additivity axiom
// licenses — and the experiment verifies the axiom numerically.
func runAdditivity(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "additivity",
		Title:      "Extension — non-local storage accounting via Additivity (Sec. VIII)",
		PaperClaim: "\"we can treat such a VM in two games and compute the power of the two parts separately; ... the aggregated power of these two parts is the VM's total power\"",
	}
	host, err := heterogeneousHost()
	if err != nil {
		return nil, err
	}
	set := host.Set()
	n := set.Len()
	// A SPEC mix on the compute side; VM1 and VM3 also stream to the array.
	benches := []string{"gcc", "omnetpp", "sjeng", "namd"}
	for i, bench := range benches {
		gen, err := workload.ByName(bench, cfg.Seed+int64(i))
		if err != nil {
			return nil, err
		}
		if err := host.Attach(vm.ID(i), gen); err != nil {
			return nil, err
		}
	}
	host.SetCoalition(vm.GrandCoalition(n))
	host.Advance(cfg.scale(40))
	snap := host.Collect()
	oracle, err := host.Machine().WorthFunc(set, snap.States)
	if err != nil {
		return nil, err
	}
	var worthErr error
	computeWorth := func(s vm.Coalition) float64 {
		p, oerr := oracle(s)
		if oerr != nil && worthErr == nil {
			worthErr = oerr
		}
		return p
	}

	array := cluster.DefaultArray()
	ios := []float64{0.9, 0, 0.8, 0.7} // VM2 has only a local disk
	att, err := cluster.Account(n, computeWorth, array, ios)
	if err != nil {
		return nil, err
	}
	if worthErr != nil {
		return nil, worthErr
	}
	computePower := computeWorth(vm.GrandCoalition(n))
	arrayPower, err := array.DynamicPower(ios)
	if err != nil {
		return nil, err
	}

	res.Printf("compute machine dynamic power: %.2f W; storage array dynamic power: %.2f W", computePower, arrayPower)
	res.Printf("%-6s %10s %12s %12s %10s", "VM", "io", "compute(W)", "storage(W)", "total(W)")
	var totalSum float64
	for i, v := range set.All() {
		total := att.Total(vm.ID(i))
		totalSum += total
		res.Printf("%-6s %10.2f %12.2f %12.2f %10.2f", v.Name, ios[i], att.Compute[i], att.Storage[i], total)
		res.Set("storage_"+v.Name, att.Storage[i])
		res.Set("total_"+v.Name, total)
	}
	res.Printf("Σ totals %.2f W = compute %.2f + array %.2f (two-game Efficiency)", totalSum, computePower, arrayPower)
	res.Set("total_sum", totalSum)
	res.Set("expected_sum", computePower+arrayPower)

	dev, err := cluster.VerifyAdditivity(n, computeWorth, array, ios, 1e-9)
	if err != nil {
		return nil, fmt.Errorf("additivity check: %w", err)
	}
	res.Printf("additivity axiom verified: max per-VM deviation %.2g W between combined-game and summed Shapley values", dev)
	res.Set("additivity_deviation", dev)
	res.Set("diskless_storage_share", att.Storage[1])
	return res, nil
}

// arbitraryCatalog builds numTypes distinct custom VM shapes — the
// Sec. VIII scenario where "VMs are configured with arbitrary hardware
// resources, leading to a large number of VM types".
func arbitraryCatalog(numTypes int) vm.Catalog {
	c := make(vm.Catalog, numTypes)
	for i := 0; i < numTypes; i++ {
		c[i] = vm.Type{
			ID:       vm.TypeID(i),
			Name:     fmt.Sprintf("custom%d", i),
			VCPUs:    1 + i%4,
			MemoryGB: 2 + 3*(i%5),
			DiskGB:   20 + 25*(i%6),
		}
	}
	return c
}

// runArbitrary evaluates the VHC class-clustering extension: a host with
// 8 VMs of 8 distinct custom types (2^8 combinations would be infeasible
// to measure on real hardware at scale) is compressed to k classes, and
// the fig10-style validation error is reported per k.
func runArbitrary(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "arbitrary",
		Title:      "Extension — arbitrary VM types via VHC class clustering (Sec. VIII)",
		PaperClaim: "\"it might be difficult to apply our VHC-based linear approximation and new approximating approaches will be needed\"",
	}
	const numTypes = 8
	catalog := arbitraryCatalog(numTypes)
	res.Printf("%8s %14s %14s %14s", "classes", "combos swept", "mean rel err", "max rel err")
	ks := []int{2, 3, 4, 8}
	if cfg.Quick {
		ks = []int{2, 4}
	}
	for _, k := range ks {
		classes, err := vhc.ClusterTypes(catalog, k, cfg.Seed)
		if err != nil {
			return nil, err
		}
		meanErr, maxErr, err := arbitraryValidation(cfg, catalog, classes)
		if err != nil {
			return nil, fmt.Errorf("k=%d: %w", k, err)
		}
		res.Printf("%8d %14d %13.2f%% %13.2f%%", classes.Classes, 1<<classes.Classes-1, meanErr*100, maxErr*100)
		res.Set(fmt.Sprintf("mean_err_k%d", k), meanErr)
		res.Set(fmt.Sprintf("combos_k%d", k), float64(int(1)<<classes.Classes-1))
	}
	res.Printf("clustering trades offline sweep cost (2^k combos) against approximation error")
	return res, nil
}

// arbitraryValidation trains an estimator with the given class map and
// validates the full-coalition v(S,C) against the measured power under a
// SPEC mix (the fig10 protocol on the custom-type host).
func arbitraryValidation(cfg Config, catalog vm.Catalog, classes *vhc.ClassMap) (meanErr, maxErr float64, err error) {
	mach, err := machine.New(machine.XeonProfile(), machine.Pack)
	if err != nil {
		return 0, 0, err
	}
	vms := make([]vm.VM, len(catalog))
	for i := range vms {
		vms[i] = vm.VM{Name: catalog[i].Name, Type: vm.TypeID(i)}
	}
	set, err := vm.NewSet(catalog, vms)
	if err != nil {
		return 0, 0, err
	}
	host, err := hypervisor.NewHost(mach, set)
	if err != nil {
		return 0, 0, err
	}
	m, err := paperMeter(host, cfg.Seed)
	if err != nil {
		return 0, 0, err
	}
	// Keep enough samples per combination that the widest class combo
	// (classes × k features) stays well-determined even in Quick mode.
	offline := cfg.scale(160)
	if floor := 8 * classes.Classes * int(vm.NumComponents); offline < floor {
		offline = floor
	}
	est, err := core.New(host, m, core.Config{
		OfflineTicksPerCombo: offline,
		Seed:                 cfg.Seed,
		Classes:              classes,
	})
	if err != nil {
		return 0, 0, err
	}
	if err := est.CollectOffline(); err != nil {
		return 0, 0, err
	}

	suite := workload.SPECSuite(cfg.Seed)
	for i := 0; i < set.Len(); i++ {
		if err := host.Attach(vm.ID(i), suite[i%len(suite)]); err != nil {
			return 0, 0, err
		}
	}
	grand := vm.GrandCoalition(set.Len())
	host.SetCoalition(grand)
	errs := make([]float64, 0, cfg.scale(200))
	for t := 0; t < cfg.scale(200); t++ {
		host.Advance(1)
		snap := host.Collect()
		sample, err := m.Sample()
		if err != nil {
			return 0, 0, err
		}
		measured := sample.Power - est.IdlePower()
		combo, features, err := vhc.ClassedFeaturesFor(set, snap.Coalition, snap.States, classes)
		if err != nil {
			return 0, 0, err
		}
		approx, err := est.Approximator().Estimate(combo, features)
		if err != nil {
			return 0, 0, err
		}
		errs = append(errs, stats.RelativeError(approx, measured))
	}
	sum, err := stats.Summarize(errs)
	if err != nil {
		return 0, 0, err
	}
	return sum.Mean, sum.Max, nil
}
