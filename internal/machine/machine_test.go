package machine

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"vmpower/internal/vm"
)

func load1(u float64) Load {
	return Load{VCPUs: 1, MemoryGB: 1, DiskGB: 8, State: vm.State{vm.CPU: u}}
}

func TestProfileValidate(t *testing.T) {
	for _, prof := range []Profile{XeonProfile(), PentiumProfile(), DenseProfile()} {
		if err := prof.Validate(); err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
	}
	bad := []func(p *Profile){
		func(p *Profile) { p.PhysicalCores = 0 },
		func(p *Profile) { p.ThreadsPerCore = 3 },
		func(p *Profile) { p.IdlePower = -1 },
		func(p *Profile) { p.Alpha = 0 },
		func(p *Profile) { p.Beta = p.Alpha },
		func(p *Profile) { p.Beta = -1 },
		func(p *Profile) { p.UncorePower = -1 },
		func(p *Profile) { p.DeliveryFloor = 0 },
		func(p *Profile) { p.DeliveryFloor = 1.5 },
		func(p *Profile) { p.DeliveryFloor = 0.5; p.DeliveryTau = 0 },
		func(p *Profile) { p.MemoryGB = 0 },
		func(p *Profile) { p.MemoryPowerMax = -1 },
	}
	for i, mutate := range bad {
		p := XeonProfile()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Fatalf("mutation %d: want validation error", i)
		}
	}
}

func TestDeliveryFactor(t *testing.T) {
	p := XeonProfile()
	if got := p.DeliveryFactor(1); got != 1 {
		t.Fatalf("factor(1) = %g", got)
	}
	if got := p.DeliveryFactor(0); got != 1 {
		t.Fatalf("factor(0) = %g", got)
	}
	prev := 1.0
	for c := 2; c <= p.PhysicalCores; c++ {
		f := p.DeliveryFactor(c)
		if f >= prev {
			t.Fatalf("factor(%d) = %g not decreasing (prev %g)", c, f, prev)
		}
		if f < p.DeliveryFloor {
			t.Fatalf("factor(%d) = %g below floor %g", c, f, p.DeliveryFloor)
		}
		prev = f
	}
	flat := XeonProfile()
	flat.DeliveryFloor = 1
	if flat.DeliveryFactor(8) != 1 {
		t.Fatal("floor=1 must disable the effect")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Profile{}, Pack); err == nil {
		t.Fatal("want invalid-profile error")
	}
	if _, err := New(XeonProfile(), SchedulerPolicy(9)); err == nil {
		t.Fatal("want unknown-policy error")
	}
	m, err := New(XeonProfile(), Pack)
	if err != nil {
		t.Fatal(err)
	}
	if m.Policy() != Pack || m.Profile().Name != "xeon16" {
		t.Fatal("accessors wrong")
	}
}

func TestPaperCalibrationXeon(t *testing.T) {
	// The headline Fig. 4b numbers: first busy 1-vCPU VM adds 13 W, the
	// second adds 7 W under Pack placement, so the per-VM model error is
	// (13−7)/13 = 46.15%.
	m, err := New(XeonProfile(), Pack)
	if err != nil {
		t.Fatal(err)
	}
	one, err := m.DynamicPower([]Load{load1(1)})
	if err != nil {
		t.Fatal(err)
	}
	two, err := m.DynamicPower([]Load{load1(1), load1(1)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(one-13) > 1e-9 {
		t.Fatalf("first VM marginal = %g, want 13", one)
	}
	if math.Abs((two-one)-7) > 1e-9 {
		t.Fatalf("second VM marginal = %g, want 7", two-one)
	}
	if gotErr := (one - (two - one)) / one; math.Abs(gotErr-0.4615) > 0.001 {
		t.Fatalf("model error = %g, want 0.4615", gotErr)
	}
}

func TestPaperCalibrationPentium(t *testing.T) {
	m, err := New(PentiumProfile(), Pack)
	if err != nil {
		t.Fatal(err)
	}
	one, err := m.DynamicPower([]Load{load1(1)})
	if err != nil {
		t.Fatal(err)
	}
	two, err := m.DynamicPower([]Load{load1(1), load1(1)})
	if err != nil {
		t.Fatal(err)
	}
	if gotErr := (one - (two - one)) / one; math.Abs(gotErr-0.2522) > 0.001 {
		t.Fatalf("Pentium model error = %g, want 0.2522", gotErr)
	}
}

func TestIdlePower(t *testing.T) {
	m, err := New(XeonProfile(), Pack)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := m.DynamicPower(nil)
	if err != nil {
		t.Fatal(err)
	}
	if dyn != 0 {
		t.Fatalf("no loads must draw 0 dynamic, got %g", dyn)
	}
	total, err := m.Power(nil)
	if err != nil {
		t.Fatal(err)
	}
	if total != 138 {
		t.Fatalf("idle total = %g, want 138", total)
	}
	// An attached but fully idle VM adds nothing (Remark 1).
	dynIdleVM, err := m.DynamicPower([]Load{load1(0)})
	if err != nil {
		t.Fatal(err)
	}
	if dynIdleVM != 0 {
		t.Fatalf("idle VM must draw 0, got %g", dynIdleVM)
	}
}

func TestThreadPlacementPackVsSpread(t *testing.T) {
	prof := XeonProfile()
	pack, _ := New(prof, Pack)
	spread, _ := New(prof, Spread)

	packGrid, err := pack.ThreadUtilizations([]Load{load1(1), load1(1)})
	if err != nil {
		t.Fatal(err)
	}
	if packGrid[0][0] != 1 || packGrid[0][1] != 1 {
		t.Fatalf("pack must place siblings on core 0: %v", packGrid[0])
	}
	spreadGrid, err := spread.ThreadUtilizations([]Load{load1(1), load1(1)})
	if err != nil {
		t.Fatal(err)
	}
	if spreadGrid[0][0] != 1 || spreadGrid[1][0] != 1 || spreadGrid[0][1] != 0 {
		t.Fatalf("spread must place on cores 0 and 1: %v %v", spreadGrid[0], spreadGrid[1])
	}
}

func TestOvercommit(t *testing.T) {
	m, _ := New(PentiumProfile(), Pack) // 4 logical cores
	loads := []Load{{VCPUs: 5, MemoryGB: 1, DiskGB: 8, State: vm.State{vm.CPU: 1}}}
	if _, err := m.DynamicPower(loads); !errors.Is(err, ErrOvercommit) {
		t.Fatalf("want ErrOvercommit, got %v", err)
	}
}

func TestLoadValidation(t *testing.T) {
	m, _ := New(XeonProfile(), Pack)
	if _, err := m.DynamicPower([]Load{{VCPUs: 0, State: vm.State{}}}); err == nil {
		t.Fatal("want vCPU validation error")
	}
	bad := Load{VCPUs: 1, MemoryGB: 1, DiskGB: 1, State: vm.State{vm.CPU: 2}}
	if _, err := m.DynamicPower([]Load{bad}); !errors.Is(err, vm.ErrStateRange) {
		t.Fatalf("want state range error, got %v", err)
	}
}

func TestMemoryDiskPower(t *testing.T) {
	m, _ := New(XeonProfile(), Pack)
	base, err := m.DynamicPower([]Load{load1(0.5)})
	if err != nil {
		t.Fatal(err)
	}
	mem := load1(0.5)
	mem.MemoryGB = 16 // half the machine's 32 GB
	mem.State[vm.Memory] = 1
	withMem, err := m.DynamicPower([]Load{mem})
	if err != nil {
		t.Fatal(err)
	}
	// Memory at full activity on half the machine memory: +4·0.5 = 2 W.
	if math.Abs((withMem-base)-2) > 1e-9 {
		t.Fatalf("memory power delta = %g, want 2", withMem-base)
	}
	disk := load1(0.5)
	disk.State[vm.DiskIO] = 0.5
	withDisk, err := m.DynamicPower([]Load{disk})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs((withDisk-base)-1.5) > 1e-9 {
		t.Fatalf("disk power delta = %g, want 1.5", withDisk-base)
	}
}

func TestWorthFunc(t *testing.T) {
	m, _ := New(XeonProfile(), Pack)
	catalog := vm.Catalog{{ID: 0, Name: "t", VCPUs: 1, MemoryGB: 1, DiskGB: 8}}
	set, err := vm.NewSet(catalog, []vm.VM{{Type: 0}, {Type: 0}})
	if err != nil {
		t.Fatal(err)
	}
	states := []vm.State{{vm.CPU: 1}, {vm.CPU: 1}}
	worth, err := m.WorthFunc(set, states)
	if err != nil {
		t.Fatal(err)
	}
	empty, err := worth(vm.EmptyCoalition)
	if err != nil {
		t.Fatal(err)
	}
	if empty != 0 {
		t.Fatalf("v(∅) = %g", empty)
	}
	grand, err := worth(vm.GrandCoalition(2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(grand-20) > 1e-9 {
		t.Fatalf("v(N) = %g, want 20", grand)
	}
	if _, err := m.WorthFunc(set, states[:1]); err == nil {
		t.Fatal("want state-count error")
	}
}

func TestSchedulerPolicyString(t *testing.T) {
	if Pack.String() != "pack" || Spread.String() != "spread" {
		t.Fatal("policy names wrong")
	}
	if SchedulerPolicy(7).String() == "" {
		t.Fatal("unknown policy must render")
	}
}

// Property: dynamic power is monotone in a VM's CPU utilization and
// bounded by the all-cores-max envelope.
func TestPowerMonotoneProperty(t *testing.T) {
	m, _ := New(XeonProfile(), Pack)
	f := func(rawU1, rawU2 float64) bool {
		u1 := math.Abs(math.Mod(rawU1, 1))
		u2 := math.Abs(math.Mod(rawU2, 1))
		if math.IsNaN(u1) || math.IsNaN(u2) {
			return true
		}
		lo, hi := u1, u2
		if lo > hi {
			lo, hi = hi, lo
		}
		pLo, err1 := m.DynamicPower([]Load{load1(lo), load1(0.4)})
		pHi, err2 := m.DynamicPower([]Load{load1(hi), load1(0.4)})
		if err1 != nil || err2 != nil {
			return false
		}
		return pHi >= pLo-1e-9 && pHi >= 0 && pHi < 1000
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: power is sub-additive across VMs under Pack placement — the
// coalition never draws more than the sum of its parts run separately.
func TestPowerSubadditiveProperty(t *testing.T) {
	m, _ := New(XeonProfile(), Pack)
	f := func(rawU1, rawU2 float64) bool {
		u1 := math.Abs(math.Mod(rawU1, 1))
		u2 := math.Abs(math.Mod(rawU2, 1))
		if math.IsNaN(u1) || math.IsNaN(u2) {
			return true
		}
		solo1, err1 := m.DynamicPower([]Load{load1(u1)})
		solo2, err2 := m.DynamicPower([]Load{load1(u2)})
		both, err3 := m.DynamicPower([]Load{load1(u1), load1(u2)})
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return both <= solo1+solo2+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
