// Package machine simulates the power behaviour of the paper's physical
// testbed: hyper-threaded x86 machines whose wall power exhibits the VM
// interaction effects the paper measures (Sec. III). It substitutes for
// the Pentium/Xeon hardware: the algorithms only ever observe
// (VM states, machine power) pairs, exactly the interface the real
// testbed exposes through its power meter.
//
// The ground-truth power function is
//
//	P = Idle + delivery(activeCores) · Σ_cores P_core(u1, u2) + P_mem + P_disk
//	P_core(u1, u2) = Uncore·1{u1+u2>0} + Alpha·(u1+u2) − Beta·min(u1, u2)
//
// where u1, u2 are the core's two hyperthread utilizations. The −Beta·min
// term is the hyper-threading contention of Fig. 5: when both sibling
// threads are busy they share execution units, so the second thread adds
// less power than the first. Profiles are calibrated so the paper's
// headline observations reproduce: on the Xeon profile a first 100%-busy
// 1-vCPU VM adds 13 W and an identical second one only 7 W (46.15% error
// for the independent per-VM power model, Fig. 4b); on the Pentium
// profile the corresponding error is 25.22% (Fig. 4a).
package machine

import (
	"errors"
	"fmt"
	"math"
)

// Profile describes the power behaviour of a physical machine model.
type Profile struct {
	// Name identifies the profile ("xeon16", "pentium").
	Name string
	// PhysicalCores is the number of physical cores.
	PhysicalCores int
	// ThreadsPerCore is the hyperthread count per core (2 with HTT).
	ThreadsPerCore int
	// IdlePower is the whole-machine idle power in watts (the paper's
	// Xeon machine idles at ~138 W).
	IdlePower float64
	// UncorePower is the per-physical-core power drawn as soon as either
	// of its threads is non-idle (clock gating released), in watts.
	UncorePower float64
	// Alpha is the full-utilization power of one hyperthread on an
	// otherwise idle core, in watts.
	Alpha float64
	// Beta is the hyper-threading contention penalty: power NOT drawn
	// when both sibling threads are simultaneously busy, in watts at
	// full overlap. Beta < Alpha.
	Beta float64
	// DeliveryFloor and DeliveryTau model the machine-level per-core
	// power sublinearity of turbo/frequency scaling and shared power
	// delivery: with c active physical cores, total CPU dynamic power is
	// scaled by
	//
	//	factor(c) = DeliveryFloor + (1−DeliveryFloor)·exp(−(c−1)/DeliveryTau)
	//
	// so a lone busy core runs at full (turbo) power per unit work while
	// a fully loaded machine draws substantially less per core — the
	// effect that makes the sum of independently trained per-VM power
	// models overshoot the measured power by tens of percent (Fig. 11).
	// DeliveryFloor = 1 (or DeliveryTau <= 0) disables the effect.
	DeliveryFloor float64
	DeliveryTau   float64
	// MemoryGB is the machine's installed memory.
	MemoryGB int
	// MemoryPowerMax is the extra power at full memory activity (the
	// paper measures ~12 W and calls it stable; we keep a small dynamic
	// range so the multi-component state vectors are exercised).
	MemoryPowerMax float64
	// DiskPowerMax is the extra power at full disk activity (~10 W).
	DiskPowerMax float64
}

// Validate checks the profile is physically sensible.
func (p Profile) Validate() error {
	switch {
	case p.PhysicalCores <= 0:
		return fmt.Errorf("machine: profile %q has %d physical cores", p.Name, p.PhysicalCores)
	case p.ThreadsPerCore <= 0 || p.ThreadsPerCore > 2:
		return fmt.Errorf("machine: profile %q has %d threads/core, want 1 or 2", p.Name, p.ThreadsPerCore)
	case p.IdlePower < 0:
		return fmt.Errorf("machine: profile %q has negative idle power", p.Name)
	case p.Alpha <= 0:
		return fmt.Errorf("machine: profile %q has non-positive alpha", p.Name)
	case p.Beta < 0 || p.Beta >= p.Alpha:
		return fmt.Errorf("machine: profile %q beta %g outside [0, alpha=%g)", p.Name, p.Beta, p.Alpha)
	case p.UncorePower < 0:
		return fmt.Errorf("machine: profile %q has negative uncore power", p.Name)
	case p.DeliveryFloor <= 0 || p.DeliveryFloor > 1:
		return fmt.Errorf("machine: profile %q delivery floor %g outside (0,1]", p.Name, p.DeliveryFloor)
	case p.DeliveryFloor < 1 && p.DeliveryTau <= 0:
		return fmt.Errorf("machine: profile %q delivery floor %g needs positive tau, got %g", p.Name, p.DeliveryFloor, p.DeliveryTau)
	case p.MemoryGB <= 0:
		return fmt.Errorf("machine: profile %q has %d GB memory", p.Name, p.MemoryGB)
	case p.MemoryPowerMax < 0 || p.DiskPowerMax < 0:
		return fmt.Errorf("machine: profile %q has negative component power", p.Name)
	}
	return nil
}

// LogicalCores returns the number of schedulable hyperthreads.
func (p Profile) LogicalCores() int { return p.PhysicalCores * p.ThreadsPerCore }

// DeliveryFactor returns the per-core power scale with activeCores busy
// physical cores (1.0 for a single active core).
func (p Profile) DeliveryFactor(activeCores int) float64 {
	if activeCores <= 1 || p.DeliveryFloor >= 1 || p.DeliveryTau <= 0 {
		return 1
	}
	return p.DeliveryFloor + (1-p.DeliveryFloor)*math.Exp(-float64(activeCores-1)/p.DeliveryTau)
}

// XeonProfile models the prototype's Intel Xeon 16-core machine (Sec. VI-B):
// idle ~138 W; a lone 100%-busy hyperthread adds Uncore+Alpha = 13 W and a
// busy sibling adds Alpha−Beta = 7 W, reproducing Fig. 4b exactly.
func XeonProfile() Profile {
	return Profile{
		Name:           "xeon16",
		PhysicalCores:  16,
		ThreadsPerCore: 2,
		IdlePower:      138,
		UncorePower:    2,
		Alpha:          11,
		Beta:           4,
		DeliveryFloor:  0.45,
		DeliveryTau:    4,
		MemoryGB:       32,
		MemoryPowerMax: 4,
		DiskPowerMax:   3,
	}
}

// DenseProfile models a modern high-density virtualization host: 128
// physical cores with two threads each (256 logical cores), the scale at
// which a VM population of hundreds collapses into repeated symmetry
// classes and exact allocation runs through the collapsed solver rather
// than 2^n enumeration. Power constants are extrapolated from the Xeon
// profile at 8x the core count.
func DenseProfile() Profile {
	return Profile{
		Name:           "dense256",
		PhysicalCores:  128,
		ThreadsPerCore: 2,
		IdlePower:      420,
		UncorePower:    6,
		Alpha:          9,
		Beta:           3.5,
		DeliveryFloor:  0.45,
		DeliveryTau:    24,
		MemoryGB:       1024,
		MemoryPowerMax: 48,
		DiskPowerMax:   20,
	}
}

// PentiumProfile models the paper's Intel Pentium measurement machine:
// a lone busy hyperthread adds 9 W, a busy sibling adds 9·(1−0.2522) ≈
// 6.73 W, reproducing the 25.22% per-VM model error of Fig. 4a.
func PentiumProfile() Profile {
	return Profile{
		Name:           "pentium",
		PhysicalCores:  2,
		ThreadsPerCore: 2,
		IdlePower:      45,
		UncorePower:    1.5,
		Alpha:          7.5,
		Beta:           0.7724, // gap = uncore+beta = 0.2522·(uncore+alpha): 25.22% model error
		DeliveryFloor:  0.85,
		DeliveryTau:    2,
		MemoryGB:       8,
		MemoryPowerMax: 2,
		DiskPowerMax:   2,
	}
}

// ErrOvercommit is returned when a coalition requests more vCPUs than the
// machine has logical cores. The paper's deployments pin at most one vCPU
// per logical core (Sec. V-B), and the simulator enforces the same.
var ErrOvercommit = errors.New("machine: coalition vCPUs exceed logical cores")
