package machine

import (
	"fmt"
	"math"

	"vmpower/internal/vm"
)

// SchedulerPolicy selects how vCPUs are placed onto logical cores.
type SchedulerPolicy int

const (
	// Pack fills both hyperthreads of a physical core before moving to
	// the next core (core0.t0, core0.t1, core1.t0, ...). This is the
	// placement under which the paper's contention phenomenon appears:
	// two 1-vCPU VMs land on sibling threads.
	Pack SchedulerPolicy = iota
	// Spread fills one thread per physical core first, then the sibling
	// threads (core0.t0, core1.t0, ..., core0.t1, ...).
	Spread
)

// String names the policy.
func (p SchedulerPolicy) String() string {
	switch p {
	case Pack:
		return "pack"
	case Spread:
		return "spread"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Load is one running VM as the machine sees it: its resource shape and
// its current component state.
type Load struct {
	// VCPUs is the VM's vCPU count (each pinned to one logical core).
	VCPUs int
	// MemoryGB and DiskGB are the VM's configured resources, used to
	// weight the memory/disk power terms.
	MemoryGB int
	DiskGB   int
	// State is the VM's current component-state vector.
	State vm.State
}

// Machine is a simulated physical machine: a profile plus a scheduler
// policy. Machine is stateless and safe for concurrent use; the
// time-stepped wrapper lives in the hypervisor package.
type Machine struct {
	prof   Profile
	policy SchedulerPolicy
}

// New builds a Machine, validating the profile.
func New(prof Profile, policy SchedulerPolicy) (*Machine, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if policy != Pack && policy != Spread {
		return nil, fmt.Errorf("machine: unknown scheduler policy %d", int(policy))
	}
	return &Machine{prof: prof, policy: policy}, nil
}

// Profile returns the machine's profile.
func (m *Machine) Profile() Profile { return m.prof }

// Policy returns the scheduler policy.
func (m *Machine) Policy() SchedulerPolicy { return m.policy }

// threadSlot identifies a logical core as (physical core, thread).
type threadSlot struct{ core, thread int }

// slotOrder returns the placement order of logical cores for the policy.
func (m *Machine) slotOrder() []threadSlot {
	n := m.prof.LogicalCores()
	slots := make([]threadSlot, 0, n)
	switch m.policy {
	case Spread:
		for t := 0; t < m.prof.ThreadsPerCore; t++ {
			for c := 0; c < m.prof.PhysicalCores; c++ {
				slots = append(slots, threadSlot{core: c, thread: t})
			}
		}
	default: // Pack
		for c := 0; c < m.prof.PhysicalCores; c++ {
			for t := 0; t < m.prof.ThreadsPerCore; t++ {
				slots = append(slots, threadSlot{core: c, thread: t})
			}
		}
	}
	return slots
}

// ThreadUtilizations places the loads' vCPUs onto logical cores in load
// order under the scheduler policy and returns the per-physical-core,
// per-thread utilization grid. Each vCPU of load i runs at the load's CPU
// state (the mean utilization across the VM's vCPUs).
// It returns ErrOvercommit when Σ vCPUs exceeds the logical core count.
func (m *Machine) ThreadUtilizations(loads []Load) ([][]float64, error) {
	grid := make([][]float64, m.prof.PhysicalCores)
	for i := range grid {
		grid[i] = make([]float64, m.prof.ThreadsPerCore)
	}
	slots := m.slotOrder()
	next := 0
	for li, l := range loads {
		if l.VCPUs <= 0 {
			return nil, fmt.Errorf("machine: load %d has %d vCPUs", li, l.VCPUs)
		}
		if err := l.State.Validate(); err != nil {
			return nil, fmt.Errorf("machine: load %d: %w", li, err)
		}
		for v := 0; v < l.VCPUs; v++ {
			if next >= len(slots) {
				return nil, fmt.Errorf("%w: need > %d", ErrOvercommit, len(slots))
			}
			s := slots[next]
			grid[s.core][s.thread] = l.State[vm.CPU]
			next++
		}
	}
	return grid, nil
}

// corePower returns the dynamic power of one physical core given its
// thread utilizations: Uncore·1{busy} + Alpha·Σu − Beta·min(u1, u2).
func (m *Machine) corePower(threads []float64) float64 {
	var sum, minU float64
	minU = math.Inf(1)
	busy := false
	for _, u := range threads {
		sum += u
		if u < minU {
			minU = u
		}
		if u > 0 {
			busy = true
		}
	}
	if !busy {
		return 0
	}
	p := m.prof.UncorePower + m.prof.Alpha*sum
	if len(threads) >= 2 {
		p -= m.prof.Beta * minU
	}
	return p
}

// DynamicPower returns the machine's power above idle for the given
// coalition of loads (the ground-truth v(S, C) of the game, before meter
// noise).
func (m *Machine) DynamicPower(loads []Load) (float64, error) {
	grid, err := m.ThreadUtilizations(loads)
	if err != nil {
		return 0, err
	}
	var cpu float64
	active := 0
	for _, threads := range grid {
		p := m.corePower(threads)
		if p > 0 {
			active++
		}
		cpu += p
	}
	cpu *= m.prof.DeliveryFactor(active)

	var memFrac, diskFrac float64
	for _, l := range loads {
		memFrac += l.State[vm.Memory] * float64(l.MemoryGB) / float64(m.prof.MemoryGB)
		diskFrac += l.State[vm.DiskIO]
	}
	if memFrac > 1 {
		memFrac = 1
	}
	if diskFrac > 1 {
		diskFrac = 1
	}
	return cpu + m.prof.MemoryPowerMax*memFrac + m.prof.DiskPowerMax*diskFrac, nil
}

// Power returns the machine's total wall power (idle + dynamic).
func (m *Machine) Power(loads []Load) (float64, error) {
	dyn, err := m.DynamicPower(loads)
	if err != nil {
		return 0, err
	}
	return m.prof.IdlePower + dyn, nil
}

// WorthFunc builds the ground-truth coalition worth function v(S, C') for
// a fixed VM set and a fixed per-VM state assignment: the dynamic power of
// the machine when exactly coalition S runs with its members' states.
// Idle members are excluded entirely (Remark 1: an idle VM draws nothing).
// The returned function panics on internal inconsistency only if set and
// states were modified after the call; it is intended for experiment
// oracles and tests where the coalition space is exhaustively enumerated.
func (m *Machine) WorthFunc(set *vm.Set, states []vm.State) (func(vm.Coalition) (float64, error), error) {
	if set.Len() != len(states) {
		return nil, fmt.Errorf("machine: %d states for %d VMs", len(states), set.Len())
	}
	loadsFor := make([]Load, set.Len())
	for i := 0; i < set.Len(); i++ {
		t, err := set.TypeOf(vm.ID(i))
		if err != nil {
			return nil, err
		}
		loadsFor[i] = Load{VCPUs: t.VCPUs, MemoryGB: t.MemoryGB, DiskGB: t.DiskGB, State: states[i]}
	}
	return func(s vm.Coalition) (float64, error) {
		loads := make([]Load, 0, s.Size())
		for _, id := range s.Members() {
			loads = append(loads, loadsFor[int(id)])
		}
		return m.DynamicPower(loads)
	}, nil
}
