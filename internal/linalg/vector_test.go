package linalg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestVectorDot(t *testing.T) {
	tests := []struct {
		name    string
		v, u    Vector
		want    float64
		wantErr bool
	}{
		{name: "basic", v: Vector{1, 2, 3}, u: Vector{4, 5, 6}, want: 32},
		{name: "empty", v: Vector{}, u: Vector{}, want: 0},
		{name: "negatives", v: Vector{-1, 1}, u: Vector{1, -1}, want: -2},
		{name: "mismatch", v: Vector{1}, u: Vector{1, 2}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := tt.v.Dot(tt.u)
			if tt.wantErr {
				if !errors.Is(err, ErrDimension) {
					t.Fatalf("want ErrDimension, got %v", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Fatalf("Dot = %g, want %g", got, tt.want)
			}
		})
	}
}

func TestVectorAddSub(t *testing.T) {
	v := Vector{1, 2}
	u := Vector{3, 5}
	sum, err := v.Add(u)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Equalish(Vector{4, 7}, 0) {
		t.Fatalf("Add = %v", sum)
	}
	diff, err := v.Sub(u)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Equalish(Vector{-2, -3}, 0) {
		t.Fatalf("Sub = %v", diff)
	}
	if _, err := v.Add(Vector{1}); !errors.Is(err, ErrDimension) {
		t.Fatalf("Add mismatch: %v", err)
	}
	if _, err := v.Sub(Vector{1}); !errors.Is(err, ErrDimension) {
		t.Fatalf("Sub mismatch: %v", err)
	}
}

func TestVectorAddInPlace(t *testing.T) {
	v := Vector{1, 2}
	if err := v.AddInPlace(Vector{10, 20}); err != nil {
		t.Fatal(err)
	}
	if !v.Equalish(Vector{11, 22}, 0) {
		t.Fatalf("AddInPlace = %v", v)
	}
	if err := v.AddInPlace(Vector{1}); !errors.Is(err, ErrDimension) {
		t.Fatalf("want ErrDimension, got %v", err)
	}
}

func TestVectorScaleCloneSum(t *testing.T) {
	v := Vector{1, -2, 3}
	s := v.Scale(2)
	if !s.Equalish(Vector{2, -4, 6}, 0) {
		t.Fatalf("Scale = %v", s)
	}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone aliases the original")
	}
	if got := v.Sum(); got != 2 {
		t.Fatalf("Sum = %g", got)
	}
}

func TestVectorNorm2(t *testing.T) {
	tests := []struct {
		name string
		v    Vector
		want float64
	}{
		{name: "pythagorean", v: Vector{3, 4}, want: 5},
		{name: "empty", v: Vector{}, want: 0},
		{name: "zeros", v: Vector{0, 0}, want: 0},
		{name: "huge components no overflow", v: Vector{1e200, 1e200}, want: math.Sqrt2 * 1e200},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.v.Norm2()
			if math.Abs(got-tt.want) > tt.want*1e-12 {
				t.Fatalf("Norm2 = %g, want %g", got, tt.want)
			}
		})
	}
}

func TestVectorMaxAbs(t *testing.T) {
	if got := (Vector{-7, 3}).MaxAbs(); got != 7 {
		t.Fatalf("MaxAbs = %g", got)
	}
	if got := (Vector{}).MaxAbs(); got != 0 {
		t.Fatalf("MaxAbs empty = %g", got)
	}
}

func TestVectorEqualish(t *testing.T) {
	if !(Vector{1, 2}).Equalish(Vector{1.0001, 2}, 0.001) {
		t.Fatal("want equalish within tol")
	}
	if (Vector{1, 2}).Equalish(Vector{1.1, 2}, 0.001) {
		t.Fatal("want not equalish")
	}
	if (Vector{1}).Equalish(Vector{1, 2}, 1) {
		t.Fatal("length mismatch must not be equalish")
	}
}

// Property: dot product is symmetric and linear in the first argument.
func TestVectorDotProperties(t *testing.T) {
	f := func(a, b [8]float64) bool {
		v, u := Vector(a[:]), Vector(b[:])
		vu, err1 := v.Dot(u)
		uv, err2 := u.Dot(v)
		if err1 != nil || err2 != nil {
			return false
		}
		if math.IsNaN(vu) || math.IsNaN(uv) {
			return true // NaN inputs are uninteresting
		}
		return vu == uv
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ||v||₂² ≈ v·v for moderate inputs.
func TestVectorNormDotProperty(t *testing.T) {
	f := func(a [6]float64) bool {
		v := make(Vector, len(a))
		for i, x := range a {
			// Bound the magnitude so the property holds in float64.
			v[i] = math.Mod(x, 1e6)
			if math.IsNaN(v[i]) || math.IsInf(v[i], 0) {
				v[i] = 1
			}
		}
		dot, err := v.Dot(v)
		if err != nil {
			return false
		}
		n := v.Norm2()
		return math.Abs(n*n-dot) <= 1e-6*(1+dot)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
