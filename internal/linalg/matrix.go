package linalg

import (
	"fmt"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns an all-zero rows×cols matrix.
// It returns an error if either dimension is negative.
func NewMatrix(rows, cols int) (*Matrix, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("%w: negative shape %dx%d", ErrDimension, rows, cols)
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}, nil
}

// MatrixFromRows builds a matrix from row slices. All rows must have equal
// length; the input is copied.
func MatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return &Matrix{}, nil
	}
	cols := len(rows[0])
	m := &Matrix{rows: len(rows), cols: cols, data: make([]float64, len(rows)*cols)}
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("%w: row %d has %d cols, want %d", ErrDimension, i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j). Callers are expected to pass in-range
// indices; out-of-range access panics as with native slices.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) Vector {
	out := make(Vector, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Clone returns an independent copy of m.
func (m *Matrix) Clone() *Matrix {
	out := &Matrix{rows: m.rows, cols: m.cols, data: make([]float64, len(m.data))}
	copy(out.data, m.data)
	return out
}

// MulVec returns m·v.
func (m *Matrix) MulVec(v Vector) (Vector, error) {
	if len(v) != m.cols {
		return nil, fmt.Errorf("%w: mulvec %dx%d by %d", ErrDimension, m.rows, m.cols, len(v))
	}
	out := make(Vector, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// TMulVec returns mᵀ·v.
func (m *Matrix) TMulVec(v Vector) (Vector, error) {
	if len(v) != m.rows {
		return nil, fmt.Errorf("%w: tmulvec %dx%d by %d", ErrDimension, m.rows, m.cols, len(v))
	}
	out := make(Vector, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		vi := v[i]
		for j, a := range row {
			out[j] += a * vi
		}
	}
	return out, nil
}

// Mul returns m·b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("%w: mul %dx%d by %dx%d", ErrDimension, m.rows, m.cols, b.rows, b.cols)
	}
	out := &Matrix{rows: m.rows, cols: b.cols, data: make([]float64, m.rows*b.cols)}
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			orow := out.data[i*out.cols : (i+1)*out.cols]
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out, nil
}

// Transpose returns mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	out := &Matrix{rows: m.cols, cols: m.rows, data: make([]float64, len(m.data))}
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%.6g", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
