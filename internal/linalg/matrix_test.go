package linalg

import (
	"errors"
	"strings"
	"testing"
)

func TestNewMatrix(t *testing.T) {
	m, err := NewMatrix(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Cols())
	}
	if _, err := NewMatrix(-1, 2); !errors.Is(err, ErrDimension) {
		t.Fatalf("negative rows: %v", err)
	}
}

func TestMatrixFromRows(t *testing.T) {
	m, err := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %g", m.At(1, 0))
	}
	if _, err := MatrixFromRows([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrDimension) {
		t.Fatalf("ragged rows: %v", err)
	}
	empty, err := MatrixFromRows(nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Rows() != 0 {
		t.Fatalf("empty rows = %d", empty.Rows())
	}
}

func TestMatrixSetRowClone(t *testing.T) {
	m, _ := NewMatrix(2, 2)
	m.Set(0, 1, 5)
	if m.At(0, 1) != 5 {
		t.Fatal("Set/At broken")
	}
	r := m.Row(0)
	r[0] = 42
	if m.At(0, 0) != 0 {
		t.Fatal("Row must copy")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 0 {
		t.Fatal("Clone must not alias")
	}
}

func TestMatrixMulVec(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got, err := m.MulVec(Vector{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equalish(Vector{3, 7, 11}, 0) {
		t.Fatalf("MulVec = %v", got)
	}
	if _, err := m.MulVec(Vector{1}); !errors.Is(err, ErrDimension) {
		t.Fatalf("mismatch: %v", err)
	}
}

func TestMatrixTMulVec(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got, err := m.TMulVec(Vector{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equalish(Vector{9, 12}, 0) {
		t.Fatalf("TMulVec = %v", got)
	}
	if _, err := m.TMulVec(Vector{1}); !errors.Is(err, ErrDimension) {
		t.Fatalf("mismatch: %v", err)
	}
}

func TestMatrixMul(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := MatrixFromRows([][]float64{{5, 6}, {7, 8}})
	got, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := MatrixFromRows([][]float64{{19, 22}, {43, 50}})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Fatalf("Mul[%d][%d] = %g, want %g", i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
	c, _ := NewMatrix(3, 3)
	if _, err := a.Mul(c); !errors.Is(err, ErrDimension) {
		t.Fatalf("mismatch: %v", err)
	}
}

func TestMatrixTranspose(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.Transpose()
	if mt.Rows() != 3 || mt.Cols() != 2 {
		t.Fatalf("shape = %dx%d", mt.Rows(), mt.Cols())
	}
	if mt.At(2, 1) != 6 || mt.At(0, 1) != 4 {
		t.Fatal("Transpose values wrong")
	}
}

func TestMatrixString(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 2}})
	if s := m.String(); !strings.Contains(s, "1 2") {
		t.Fatalf("String = %q", s)
	}
}
