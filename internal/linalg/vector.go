// Package linalg provides the small dense linear-algebra kernel used by
// the VHC-based linear approximation: vectors, matrices, a Householder QR
// decomposition and a least-squares solver with a ridge fallback for
// rank-deficient systems.
//
// The package is intentionally minimal and allocation-conscious; it is not
// a general-purpose BLAS. All types use float64 and row-major storage.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimension is returned when operand shapes are incompatible.
var ErrDimension = errors.New("linalg: dimension mismatch")

// Vector is a dense column vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Dot returns the inner product of v and u.
// It returns ErrDimension if the lengths differ.
func (v Vector) Dot(u Vector) (float64, error) {
	if len(v) != len(u) {
		return 0, fmt.Errorf("%w: dot %d vs %d", ErrDimension, len(v), len(u))
	}
	var s float64
	for i, x := range v {
		s += x * u[i]
	}
	return s, nil
}

// Add returns v + u as a new vector.
func (v Vector) Add(u Vector) (Vector, error) {
	if len(v) != len(u) {
		return nil, fmt.Errorf("%w: add %d vs %d", ErrDimension, len(v), len(u))
	}
	out := make(Vector, len(v))
	for i, x := range v {
		out[i] = x + u[i]
	}
	return out, nil
}

// Sub returns v - u as a new vector.
func (v Vector) Sub(u Vector) (Vector, error) {
	if len(v) != len(u) {
		return nil, fmt.Errorf("%w: sub %d vs %d", ErrDimension, len(v), len(u))
	}
	out := make(Vector, len(v))
	for i, x := range v {
		out[i] = x - u[i]
	}
	return out, nil
}

// AddInPlace accumulates u into v. It returns ErrDimension on length mismatch.
func (v Vector) AddInPlace(u Vector) error {
	if len(v) != len(u) {
		return fmt.Errorf("%w: add-in-place %d vs %d", ErrDimension, len(v), len(u))
	}
	for i := range v {
		v[i] += u[i]
	}
	return nil
}

// Scale returns a*v as a new vector.
func (v Vector) Scale(a float64) Vector {
	out := make(Vector, len(v))
	for i, x := range v {
		out[i] = a * x
	}
	return out
}

// Norm2 returns the Euclidean norm of v, computed with scaling to avoid
// overflow for large components.
func (v Vector) Norm2() float64 {
	var scale, ssq float64
	ssq = 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// MaxAbs returns the infinity norm of v (0 for an empty vector).
func (v Vector) MaxAbs() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Sum returns the sum of components.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Equalish reports whether v and u are element-wise within tol.
func (v Vector) Equalish(u Vector, tol float64) bool {
	if len(v) != len(u) {
		return false
	}
	for i, x := range v {
		if math.Abs(x-u[i]) > tol {
			return false
		}
	}
	return true
}
