package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQRSolveExact(t *testing.T) {
	// Square well-conditioned system: the QR solution must match the
	// known x for a·x = b.
	a, _ := MatrixFromRows([][]float64{
		{2, 1, 0},
		{1, 3, 1},
		{0, 1, 4},
	})
	want := Vector{1, -2, 3}
	b, err := a.MulVec(want)
	if err != nil {
		t.Fatal(err)
	}
	qr, err := DecomposeQR(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := qr.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equalish(want, 1e-10) {
		t.Fatalf("Solve = %v, want %v", got, want)
	}
}

func TestQRErrors(t *testing.T) {
	if _, err := DecomposeQR(&Matrix{}); !errors.Is(err, ErrDimension) {
		t.Fatalf("empty: %v", err)
	}
	wide, _ := NewMatrix(1, 2)
	if _, err := DecomposeQR(wide); !errors.Is(err, ErrDimension) {
		t.Fatalf("underdetermined: %v", err)
	}
	a, _ := MatrixFromRows([][]float64{{1, 0}, {0, 1}})
	qr, err := DecomposeQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := qr.Solve(Vector{1}); !errors.Is(err, ErrDimension) {
		t.Fatalf("rhs mismatch: %v", err)
	}
}

func TestQRRankDeficient(t *testing.T) {
	// Two identical columns: R has a zero pivot.
	a, _ := MatrixFromRows([][]float64{
		{1, 1},
		{2, 2},
		{3, 3},
	})
	qr, err := DecomposeQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := qr.Solve(Vector{1, 2, 3}); !errors.Is(err, ErrRankDeficient) {
		t.Fatalf("want ErrRankDeficient, got %v", err)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Noise-free overdetermined system recovers the generating weights.
	rng := rand.New(rand.NewSource(7))
	want := Vector{3.5, -1.25, 0.75}
	rows := make([][]float64, 40)
	b := make(Vector, 40)
	for i := range rows {
		row := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		rows[i] = row
		b[i] = want[0]*row[0] + want[1]*row[1] + want[2]*row[2]
	}
	a, _ := MatrixFromRows(rows)
	got, err := LeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equalish(want, 1e-9) {
		t.Fatalf("LeastSquares = %v, want %v", got, want)
	}
	rmse, err := RMSE(a, got, b)
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 1e-9 {
		t.Fatalf("RMSE = %g", rmse)
	}
}

func TestLeastSquaresRidgeFallback(t *testing.T) {
	// A zero column is rank deficient; the ridge fallback must return a
	// finite solution with (near-)zero weight on the dead column.
	rows := make([][]float64, 20)
	b := make(Vector, 20)
	rng := rand.New(rand.NewSource(3))
	for i := range rows {
		x := rng.Float64()
		rows[i] = []float64{x, 0}
		b[i] = 2 * x
	}
	a, _ := MatrixFromRows(rows)
	if _, err := LeastSquares(a, b, 0); !errors.Is(err, ErrRankDeficient) {
		t.Fatalf("without ridge: %v", err)
	}
	got, err := LeastSquares(a, b, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-2) > 1e-4 {
		t.Fatalf("live column weight = %g, want 2", got[0])
	}
	if math.Abs(got[1]) > 1e-6 {
		t.Fatalf("dead column weight = %g, want 0", got[1])
	}
}

func TestLeastSquaresUnderdetermined(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2, 3}})
	if _, err := LeastSquares(a, Vector{6}, 0); !errors.Is(err, ErrRankDeficient) {
		t.Fatalf("underdetermined without ridge: %v", err)
	}
	got, err := LeastSquares(a, Vector{6}, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	pred, _ := a.MulVec(got)
	if math.Abs(pred[0]-6) > 1e-4 {
		t.Fatalf("ridge underdetermined prediction = %g, want 6", pred[0])
	}
}

func TestLeastSquaresShapeError(t *testing.T) {
	a, _ := NewMatrix(3, 2)
	if _, err := LeastSquares(a, Vector{1}, 0); !errors.Is(err, ErrDimension) {
		t.Fatalf("shape: %v", err)
	}
}

func TestRidgeValidation(t *testing.T) {
	a, _ := NewMatrix(2, 2)
	if _, err := Ridge(a, Vector{1, 2}, 0); err == nil {
		t.Fatal("want error for non-positive lambda")
	}
	if _, err := Ridge(a, Vector{1}, 1); !errors.Is(err, ErrDimension) {
		t.Fatalf("shape: %v", err)
	}
}

func TestRidgeShrinks(t *testing.T) {
	// Heavy regularisation shrinks the solution toward zero.
	a, _ := MatrixFromRows([][]float64{{1}, {1}, {1}})
	b := Vector{2, 2, 2}
	small, err := Ridge(a, b, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Ridge(a, b, 1e3)
	if err != nil {
		t.Fatal(err)
	}
	if !(math.Abs(big[0]) < math.Abs(small[0])) {
		t.Fatalf("ridge did not shrink: small=%g big=%g", small[0], big[0])
	}
	if math.Abs(small[0]-2) > 1e-6 {
		t.Fatalf("tiny lambda solution = %g, want ~2", small[0])
	}
}

func TestResidual(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 0}, {0, 1}})
	r, err := Residual(a, Vector{1, 2}, Vector{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equalish(Vector{2, 1}, 0) {
		t.Fatalf("Residual = %v", r)
	}
}

// Property: for random overdetermined systems built from known weights,
// least squares recovers them (noise-free identifiability).
func TestLeastSquaresRecoveryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		m := n*3 + rng.Intn(10)
		want := make(Vector, n)
		for i := range want {
			want[i] = rng.NormFloat64() * 5
		}
		rows := make([][]float64, m)
		b := make(Vector, m)
		for i := range rows {
			row := make([]float64, n)
			var dot float64
			for j := range row {
				row[j] = rng.NormFloat64()
				dot += row[j] * want[j]
			}
			rows[i] = row
			b[i] = dot
		}
		a, err := MatrixFromRows(rows)
		if err != nil {
			return false
		}
		got, err := LeastSquares(a, b, 1e-10)
		if err != nil {
			return false
		}
		return got.Equalish(want, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the least-squares residual is orthogonal to the column space.
func TestResidualOrthogonalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		m := n * 4
		rows := make([][]float64, m)
		b := make(Vector, m)
		for i := range rows {
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			rows[i] = row
			b[i] = rng.NormFloat64() * 3
		}
		a, err := MatrixFromRows(rows)
		if err != nil {
			return false
		}
		x, err := LeastSquares(a, b, 1e-10)
		if err != nil {
			return false
		}
		r, err := Residual(a, x, b)
		if err != nil {
			return false
		}
		atr, err := a.TMulVec(r)
		if err != nil {
			return false
		}
		return atr.MaxAbs() < 1e-6*(1+b.MaxAbs())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
