package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrRankDeficient is returned by QR-based solves when the system has no
// unique solution and no ridge fallback was requested.
var ErrRankDeficient = errors.New("linalg: rank-deficient system")

// QR holds a Householder QR decomposition of an m×n matrix with m >= n.
// R is stored in the upper triangle of qr; the Householder vectors in the
// lower triangle plus tau.
type QR struct {
	qr  *Matrix
	tau []float64
}

// DecomposeQR computes the Householder QR decomposition of a.
// It requires a.Rows() >= a.Cols() and a non-empty matrix.
func DecomposeQR(a *Matrix) (*QR, error) {
	m, n := a.Rows(), a.Cols()
	if m == 0 || n == 0 {
		return nil, fmt.Errorf("%w: empty matrix %dx%d", ErrDimension, m, n)
	}
	if m < n {
		return nil, fmt.Errorf("%w: underdetermined %dx%d", ErrDimension, m, n)
	}
	qr := a.Clone()
	tau := make([]float64, n)
	for k := 0; k < n; k++ {
		// Compute the norm of the k-th column below (and including) row k.
		var norm float64
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, qr.At(i, k))
		}
		if norm == 0 {
			tau[k] = 0
			continue
		}
		if qr.At(k, k) < 0 {
			norm = -norm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/norm)
		}
		qr.Set(k, k, qr.At(k, k)+1)
		tau[k] = norm
		// Apply the reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
			}
		}
	}
	return &QR{qr: qr, tau: tau}, nil
}

// Solve finds x minimising ||a·x − b|| given the decomposition of a.
// It returns ErrRankDeficient when R has a (near-)zero diagonal entry.
func (d *QR) Solve(b Vector) (Vector, error) {
	m, n := d.qr.Rows(), d.qr.Cols()
	if len(b) != m {
		return nil, fmt.Errorf("%w: rhs %d, want %d", ErrDimension, len(b), m)
	}
	// y = Qᵀ b, applied reflector by reflector.
	y := b.Clone()
	for k := 0; k < n; k++ {
		if d.tau[k] == 0 {
			continue
		}
		var s float64
		for i := k; i < m; i++ {
			s += d.qr.At(i, k) * y[i]
		}
		s = -s / d.qr.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * d.qr.At(i, k)
		}
	}
	// Back substitution with R (diag(R) = -tau, strict upper in qr).
	x := make(Vector, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= d.qr.At(i, j) * x[j]
		}
		rii := -d.tau[i]
		if math.Abs(rii) < 1e-12 {
			return nil, fmt.Errorf("%w: R[%d][%d]=%g", ErrRankDeficient, i, i, rii)
		}
		x[i] = s / rii
	}
	return x, nil
}

// LeastSquares solves min ||a·x − b||₂ via QR. If the system is rank
// deficient it falls back to ridge regression with the given lambda
// (a small positive value such as 1e-8; pass 0 to disable the fallback).
func LeastSquares(a *Matrix, b Vector, ridgeLambda float64) (Vector, error) {
	if a.Rows() != len(b) {
		return nil, fmt.Errorf("%w: %d rows vs %d rhs", ErrDimension, a.Rows(), len(b))
	}
	if a.Rows() >= a.Cols() {
		qr, err := DecomposeQR(a)
		if err == nil {
			x, err := qr.Solve(b)
			if err == nil {
				return x, nil
			}
			if !errors.Is(err, ErrRankDeficient) {
				return nil, err
			}
		}
		if ridgeLambda <= 0 {
			return nil, ErrRankDeficient
		}
	} else if ridgeLambda <= 0 {
		return nil, fmt.Errorf("%w: underdetermined %dx%d without ridge", ErrRankDeficient, a.Rows(), a.Cols())
	}
	return Ridge(a, b, ridgeLambda)
}

// Ridge solves (aᵀa + λI)x = aᵀb, the Tikhonov-regularised normal
// equations, via Cholesky decomposition. lambda must be positive.
func Ridge(a *Matrix, b Vector, lambda float64) (Vector, error) {
	if lambda <= 0 {
		return nil, fmt.Errorf("linalg: ridge lambda must be positive, got %g", lambda)
	}
	if a.Rows() != len(b) {
		return nil, fmt.Errorf("%w: %d rows vs %d rhs", ErrDimension, a.Rows(), len(b))
	}
	n := a.Cols()
	at := a.Transpose()
	ata, err := at.Mul(a)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		ata.Set(i, i, ata.At(i, i)+lambda)
	}
	atb, err := at.MulVec(b)
	if err != nil {
		return nil, err
	}
	l, err := cholesky(ata)
	if err != nil {
		return nil, err
	}
	return choleskySolve(l, atb)
}

// cholesky returns the lower-triangular factor L with a = L·Lᵀ.
func cholesky(a *Matrix) (*Matrix, error) {
	n := a.Rows()
	if n != a.Cols() {
		return nil, fmt.Errorf("%w: cholesky of %dx%d", ErrDimension, n, a.Cols())
	}
	l, err := NewMatrix(n, n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, fmt.Errorf("linalg: matrix not positive definite at %d (pivot %g)", i, s)
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l, nil
}

// choleskySolve solves L·Lᵀ·x = b.
func choleskySolve(l *Matrix, b Vector) (Vector, error) {
	n := l.Rows()
	if len(b) != n {
		return nil, fmt.Errorf("%w: cholesky rhs %d, want %d", ErrDimension, len(b), n)
	}
	// Forward: L y = b.
	y := make(Vector, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Backward: Lᵀ x = y.
	x := make(Vector, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// Residual returns b − a·x, useful for fit diagnostics.
func Residual(a *Matrix, x, b Vector) (Vector, error) {
	ax, err := a.MulVec(x)
	if err != nil {
		return nil, err
	}
	return b.Sub(ax)
}

// RMSE returns the root-mean-square of b − a·x.
func RMSE(a *Matrix, x, b Vector) (float64, error) {
	r, err := Residual(a, x, b)
	if err != nil {
		return 0, err
	}
	if len(r) == 0 {
		return 0, nil
	}
	var s float64
	for _, v := range r {
		s += v * v
	}
	return math.Sqrt(s / float64(len(r))), nil
}
