// Command benchjson converts `go test -bench` output into JSON, so
// benchmark runs can be archived and diffed across commits without
// re-parsing the text format.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -out BENCH.json
//
// Each benchmark line becomes one object carrying the name, iteration
// count, ns/op, and — when -benchmem is on — B/op and allocs/op. Custom
// metrics reported via b.ReportMetric land in "extra" keyed by unit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"vmpower/internal/cliutil"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Package     string             `json:"package,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// parse reads `go test -bench` output and returns the benchmark lines in
// order. Non-benchmark lines (goos/goarch/pkg headers, PASS/ok trailers)
// are skipped, except that "pkg:" headers set the package attributed to
// the following benchmarks.
func parse(r io.Reader) ([]Result, error) {
	var out []Result
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "pkg:") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue // a test named Benchmark*, or a truncated line
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: fields[0], Package: pkg, Iterations: iters}
		sawNs := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
				sawNs = true
			case "B/op":
				b := v
				res.BytesPerOp = &b
			case "allocs/op":
				a := v
				res.AllocsPerOp = &a
			default:
				if res.Extra == nil {
					res.Extra = make(map[string]float64)
				}
				res.Extra[unit] = v
			}
		}
		if !sawNs {
			continue
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

func main() {
	outPath := flag.String("out", "", "write JSON here instead of stdout")
	version := cliutil.VersionFlag(nil)
	flag.Parse()
	if *version {
		cliutil.PrintVersion(os.Stdout, "benchjson")
		return
	}

	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *outPath != "" {
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), *outPath)
	}
}
