package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: vmpower
cpu: Intel(R) Xeon(R)
BenchmarkExactSerial/n=12-8         	     266	   4484731 ns/op
BenchmarkExactParallel/n=16-8       	      10	 102440282 ns/op	 1057400 B/op	     301 allocs/op
BenchmarkMonteCarlo/n=24-8          	      37	  31983200 ns/op	  120.5 perms/s	  524288 B/op	    1024 allocs/op
PASS
ok  	vmpower	4.912s
pkg: vmpower/internal/shapley
BenchmarkWeights-8                  	 1000000	      1042 ns/op
BenchmarkNotABench no iterations here
PASS
`

func TestParse(t *testing.T) {
	results, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(results), results)
	}

	r := results[0]
	if r.Name != "BenchmarkExactSerial/n=12-8" || r.Package != "vmpower" {
		t.Fatalf("first result: %+v", r)
	}
	if r.Iterations != 266 || r.NsPerOp != 4484731 {
		t.Fatalf("first result numbers: %+v", r)
	}
	if r.BytesPerOp != nil || r.AllocsPerOp != nil {
		t.Fatal("no -benchmem columns on the first line")
	}

	r = results[1]
	if r.BytesPerOp == nil || *r.BytesPerOp != 1057400 {
		t.Fatalf("bytes/op: %+v", r.BytesPerOp)
	}
	if r.AllocsPerOp == nil || *r.AllocsPerOp != 301 {
		t.Fatalf("allocs/op: %+v", r.AllocsPerOp)
	}

	r = results[2]
	if r.Extra["perms/s"] != 120.5 {
		t.Fatalf("extra metric: %+v", r.Extra)
	}

	r = results[3]
	if r.Package != "vmpower/internal/shapley" {
		t.Fatalf("package tracking across pkg: headers: %+v", r)
	}
	if r.Iterations != 1000000 || r.NsPerOp != 1042 {
		t.Fatalf("last result numbers: %+v", r)
	}
}

func TestParseEmpty(t *testing.T) {
	results, err := parse(strings.NewReader("PASS\nok \tvmpower\t0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("want no results, got %+v", results)
	}
}
