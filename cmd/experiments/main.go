// Command experiments regenerates the paper's tables and figures as data.
//
// Usage:
//
//	experiments [-run id1,id2|all] [-seed N] [-quick] [-csv dir] [-list]
//
// Each experiment prints its paper claim, the regenerated rows/series and
// a metrics line; -csv additionally writes every figure's data table as a
// CSV file into the given directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"vmpower/internal/cliutil"
	"vmpower/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		runIDs  = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		seed    = flag.Int64("seed", 1, "random seed")
		quick   = flag.Bool("quick", false, "shrink tick counts ~8x for a fast pass")
		csvDir  = flag.String("csv", "", "directory to write figure CSVs into")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		verify  = flag.Bool("verify", false, "run the calibration-band verification (DESIGN.md §5) and exit non-zero on failure")
		logCfg  = cliutil.LogFlags(nil)
		version = cliutil.VersionFlag(nil)
	)
	flag.Parse()
	if *version {
		cliutil.PrintVersion(os.Stdout, "experiments")
		return nil
	}

	logger, err := logCfg.Logger(os.Stderr)
	if err != nil {
		return err
	}

	if *list {
		for _, d := range experiments.All() {
			fmt.Printf("%-12s %s\n", d.ID, d.Title)
		}
		return nil
	}

	if *verify {
		results, pass, err := experiments.Verify(experiments.Config{Seed: *seed, Quick: *quick})
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatVerification(results))
		if !pass {
			return fmt.Errorf("verification failed")
		}
		fmt.Println("all calibration bands hold")
		return nil
	}

	var selected []experiments.Descriptor
	if *runIDs == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			d, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, d)
		}
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	for _, d := range selected {
		logger.Info("running experiment", "id", d.ID, "quick", *quick)
		res, err := d.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", d.ID, err)
		}
		fmt.Println(res.Format())
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, res); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeCSVs(dir string, res *experiments.Result) error {
	if len(res.Tables) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("creating %s: %w", dir, err)
	}
	for name, tbl := range res.Tables {
		path := filepath.Join(dir, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("creating %s: %w", path, err)
		}
		werr := tbl.WriteCSV(f)
		cerr := f.Close()
		if werr != nil {
			return fmt.Errorf("writing %s: %w", path, werr)
		}
		if cerr != nil {
			return fmt.Errorf("closing %s: %w", path, cerr)
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}
