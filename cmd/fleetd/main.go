// Command fleetd runs multi-host power accounting as a monitoring
// daemon: it places a VM request list across a simulated host pool,
// calibrates every host, drives the fault-isolated fleet tick at a
// fixed interval, and serves rollup allocations, per-host degradation
// state and cumulative per-tenant energy over HTTP/JSON. A host whose
// meter fails degrades or is quarantined on its own — the rest of the
// pool keeps accounting.
//
// Usage:
//
//	fleetd [-listen addr] [-hosts N] [-vms name:type:tenant[:workload],...]
//	       [-interval dur] [-seed N] [-parallelism N] [-probe N]
//	       [-holdover N] [-stuck-threshold N] [-meter-noise W]
//	       [-calibration-ticks N] [-fault-host H] [-fault-* ...]
//	       [-scenario spec] [-scenario-seed N]
//	       [-log-level L] [-log-format F] [-pprof] [-smoke]
//
// Endpoints:
//
//	GET /api/v1/status
//	GET /api/v1/allocation
//	GET /api/v1/energy
//	GET /api/v1/scenario          (lifecycle scenario progress, with -scenario)
//	GET /api/v1/events?since=SEQ  (tick event journal)
//	GET /healthz
//	GET /metrics          (Prometheus text format)
//	GET /metrics.json
//	GET /debug/flight     (flight-recorder dump; SIGQUIT dumps to stderr)
//	GET /debug/pprof/*    (with -pprof)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vmpower/internal/cliutil"
	"vmpower/internal/core"
	"vmpower/internal/faults"
	"vmpower/internal/fleet"
	"vmpower/internal/fleetd"
	"vmpower/internal/obs"
	"vmpower/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fleetd:", err)
		os.Exit(1)
	}
}

const defaultVMs = "web1:xlarge:acme:gcc,web2:xlarge:acme:gobmk,db1:large:acme:sjeng," +
	"train1:xlarge:ml-corp:omnetpp,train2:large:ml-corp:namd,cache1:medium:ml-corp:wrf," +
	"dev1:small:edu-lab:tonto"

func run() error {
	var (
		listen    = flag.String("listen", "127.0.0.1:7078", "HTTP listen address")
		hosts     = flag.Int("hosts", 3, "physical machines in the pool")
		vmsFlag   = flag.String("vms", defaultVMs, "comma list of name:type:tenant[:workload] VM specs")
		interval  = flag.Duration("interval", time.Second, "fleet tick interval")
		seed      = flag.Int64("seed", 1, "random seed")
		par       = flag.Int("parallelism", 0, "host estimation workers (0 = all cores, 1 = serial); ticks are identical at any setting")
		probe     = flag.Int("probe", 5, "readmission probe cadence for quarantined hosts, in ticks (negative disables)")
		holdover  = flag.Int("holdover", 10, "serve a host from its last good meter sample for up to this many ticks during an outage (negative disables)")
		stuckAt   = flag.Int("stuck-threshold", 0, "reject a reading repeated this many times in a row as a stuck meter (0 disables)")
		noise     = flag.Float64("meter-noise", 0.25, "wall meter Gaussian sigma in watts (0 = noiseless)")
		calib     = flag.Int("calibration-ticks", 0, "per-combination offline sample count (0 = default)")
		fHost     = flag.Int("fault-host", 0, "host index the -fault-* injector wraps")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
		smoke     = flag.Bool("smoke", false, "self-test: serve on an ephemeral port, run a few ticks, scrape /healthz, /metrics and /api/v1/events, exit")
		auditDeep = flag.Int("audit-deep", 60, "re-solve every Nth host tick through the alternate exact path and compare (0 disables deep checks; the cheap per-tick audit always runs)")
		scenFlag  = flag.String("scenario", "", "lifecycle scenario DSL (subject@tick:kind[:args], comma list; e.g. vm1@5:migrate:1:3,host:0@10:drain:2)")
		scenSeed  = flag.Int64("scenario-seed", 1, "seed for the scenario autoscale burst stream")
		version   = cliutil.VersionFlag(nil)
		logCfg    = cliutil.LogFlags(nil)
		faultCfg  = cliutil.FaultFlags(nil)
	)
	flag.Parse()
	if *version {
		cliutil.PrintVersion(os.Stdout, "fleetd")
		return nil
	}

	logger, err := logCfg.Logger(os.Stderr)
	if err != nil {
		return err
	}

	specs, err := cliutil.ParseFleetVMSpecs(*vmsFlag)
	if err != nil {
		return err
	}
	reqs := make([]fleet.VMRequest, len(specs))
	for i, sp := range specs {
		reqs[i] = fleet.VMRequest{
			Name:         sp.Name,
			Tenant:       sp.Tenant,
			Type:         sp.Type,
			Workload:     sp.Workload,
			WorkloadSeed: *seed + int64(i),
		}
	}

	parallelism := *par
	if parallelism == 0 {
		parallelism = -1 // fleet convention: negative = all cores
	}
	f, err := fleet.New(fleet.Config{
		Hosts:                *hosts,
		Seed:                 *seed,
		MeterNoise:           *noise,
		CalibrationTicks:     *calib,
		Parallelism:          parallelism,
		TickInterval:         *interval,
		QuarantineProbeTicks: *probe,
		HoldoverTicks:        *holdover,
		StuckThreshold:       *stuckAt,
	}, reqs)
	if err != nil {
		return err
	}
	for name, h := range f.Placement() {
		logger.Debug("placed", "vm", name, "host", h)
	}

	// The injector starts disarmed, so calibration below always sees the
	// clean meters; chaos is armed just before the serve loop.
	var injector *faults.Meter
	if faultCfg.Active() {
		opts, err := faultCfg.Options(*seed)
		if err != nil {
			return err
		}
		if *fHost < 0 || *fHost >= f.Hosts() {
			return fmt.Errorf("-fault-host %d out of range (fleet has %d non-empty hosts)", *fHost, f.Hosts())
		}
		if injector, err = f.InjectFaults(*fHost, opts); err != nil {
			return err
		}
	}

	logger.Info("calibrating", "hosts", f.Hosts(), "vms", len(reqs))
	if err := f.Calibrate(); err != nil {
		return err
	}
	logger.Info("calibrated")

	srv, err := fleetd.New(f)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	srv.Instrument(reg, logger, *interval)
	srv.EnableAudit(core.AuditConfig{DeepEvery: *auditDeep})

	var engine *scenario.Engine
	if *scenFlag != "" {
		events, err := cliutil.ParseScenario(*scenFlag)
		if err != nil {
			return err
		}
		if engine, err = scenario.New(f, events, *scenSeed); err != nil {
			return err
		}
		srv.SetScenario(engine)
		logger.Info("scenario loaded", "events", len(events), "seed", *scenSeed)
	}

	if injector != nil {
		injector.SetArmed(true)
		logger.Info("fault injection armed",
			"host", *fHost, "dropout", faultCfg.Dropout, "spike", faultCfg.Spike,
			"nan", faultCfg.NaN, "stuck", faultCfg.Stuck)
	}

	if *smoke {
		return runSmoke(srv, engine, injector, logger)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGQUIT dumps the flight recorder to stderr without exiting.
	quitCh := make(chan os.Signal, 1)
	signal.Notify(quitCh, syscall.SIGQUIT)
	defer signal.Stop(quitCh)

	var handler http.Handler = srv.Handler()
	if *pprofOn {
		outer := http.NewServeMux()
		outer.Handle("/", handler)
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = outer
	}

	httpSrv := &http.Server{Addr: *listen, Handler: handler, ReadHeaderTimeout: 5 * time.Second}
	errCh := make(chan error, 1)
	go func() {
		logger.Info("serving", "addr", *listen, "pprof", *pprofOn)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			return httpSrv.Shutdown(shutdownCtx)
		case err := <-errCh:
			return err
		case <-quitCh:
			logger.Warn("SIGQUIT: dumping flight recorder to stderr")
			if err := srv.DumpFlight(os.Stderr, "SIGQUIT"); err != nil {
				logger.Error("flight dump failed", "err", err)
			}
		case <-ticker.C:
			_, err := srv.Step()
			if injector != nil {
				injector.NextTick()
			}
			if err != nil {
				shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
				_ = httpSrv.Shutdown(shutdownCtx)
				cancel()
				return err
			}
		}
	}
}

// runSmoke is the CI self-test: serve on an ephemeral loopback port, run
// a handful of ticks as fast as they complete, then scrape /healthz,
// /metrics and /api/v1/events and verify the fleet surface is present —
// including a full Prometheus-exposition lint of the /metrics body, so a
// malformed family or duplicate series fails CI instead of a scraper.
// With a scenario loaded the run is long enough to play the whole script
// and /api/v1/scenario is scraped too (the lifecycle smoke test).
func runSmoke(srv *fleetd.Server, engine *scenario.Engine, injector *faults.Meter, logger *obs.Logger) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = httpSrv.Serve(ln) }()
	defer func() {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	ticks := 10
	if engine != nil {
		ticks = 30
	}
	for i := 0; i < ticks; i++ {
		if _, err := srv.Step(); err != nil {
			return fmt.Errorf("smoke: tick %d: %w", i+1, err)
		}
		if injector != nil {
			injector.NextTick()
		}
	}

	base := "http://" + ln.Addr().String()
	health, err := scrape(base + "/healthz")
	if err != nil {
		return fmt.Errorf("smoke: %w", err)
	}
	for _, want := range []string{`"status"`, `"hosts"`} {
		if !strings.Contains(health, want) {
			return fmt.Errorf("smoke: /healthz missing %s: %s", want, health)
		}
	}
	metrics, err := scrape(base + "/metrics")
	if err != nil {
		return fmt.Errorf("smoke: %w", err)
	}
	for _, want := range []string{
		`vmpower_fleet_hosts{state="healthy"}`,
		fmt.Sprintf("vmpower_fleet_ticks_total %d", ticks),
		"vmpower_fleet_tenant_watts",
		"vmpower_fleet_tick_duration_seconds_bucket",
		"vmpower_build_info{",
		fmt.Sprintf("vmpower_fleet_audit_checks_total %d", ticks),
		"vmpower_audit_checks_total",
		"vmpower_tick_skew_seconds",
	} {
		if !strings.Contains(metrics, want) {
			return fmt.Errorf("smoke: /metrics missing %q", want)
		}
	}
	if problems := obs.LintExposition(strings.NewReader(metrics)); len(problems) > 0 {
		return fmt.Errorf("smoke: /metrics exposition lint: %s", strings.Join(problems, "; "))
	}
	if !strings.Contains(metrics, "vmpower_fleet_audit_violations_total 0") {
		return fmt.Errorf("smoke: fleet conservation violations reported:\n%s", metrics)
	}
	if !strings.Contains(metrics, "vmpower_audit_violations_total 0") {
		return fmt.Errorf("smoke: per-tick audit violations reported:\n%s", metrics)
	}
	events, err := scrape(base + "/api/v1/events?since=0")
	if err != nil {
		return fmt.Errorf("smoke: %w", err)
	}
	for _, want := range []string{`"since"`, `"next"`, `"events"`} {
		if !strings.Contains(events, want) {
			return fmt.Errorf("smoke: /api/v1/events missing %s: %s", want, events)
		}
	}
	if engine != nil {
		scen, err := scrape(base + "/api/v1/scenario")
		if err != nil {
			return fmt.Errorf("smoke: %w", err)
		}
		for _, want := range []string{`"events"`, `"applied"`, `"done":true`, `"refused":0`} {
			if !strings.Contains(scen, want) {
				return fmt.Errorf("smoke: /api/v1/scenario missing %s: %s", want, scen)
			}
		}
		// The lifecycle journal and counters must have recorded the script.
		for _, want := range []string{
			`vmpower_fleet_lifecycle_events_total{type="migrate_start"}`,
			`vmpower_fleet_lifecycle_events_total{type="migrate_finish"}`,
			`vmpower_fleet_lifecycle_events_total{type="drain_finish"}`,
			`vmpower_fleet_migrations_total{result="completed"}`,
		} {
			if !strings.Contains(metrics, want) {
				return fmt.Errorf("smoke: /metrics missing %q", want)
			}
		}
		for _, want := range []string{"migrate_start", "drain_start", "drain_finish"} {
			if !strings.Contains(events, want) {
				return fmt.Errorf("smoke: /api/v1/events missing lifecycle event %q", want)
			}
		}
		logger.Info("scenario smoke", "status", strings.TrimSpace(scen))
	}
	logger.Info("smoke ok", "addr", base, "healthz", strings.TrimSpace(health))
	fmt.Println("fleetd smoke: ok")
	return nil
}

// scrape GETs url and returns the body, insisting on a 2xx status.
func scrape(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode/100 != 2 {
		return "", fmt.Errorf("GET %s: %s: %s", url, resp.Status, body)
	}
	return string(body), nil
}
