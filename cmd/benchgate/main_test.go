package main

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

func fptr(v float64) *float64 { return &v }

// trajectory builds a baseline covering every default headline family.
func trajectory() []Result {
	return []Result{
		{Name: "BenchmarkEstimateTick/n=16/steady/plan=true", NsPerOp: 5_102_471, AllocsPerOp: fptr(29)},
		{Name: "BenchmarkEstimateTick/n=16/alldirty/plan=true", NsPerOp: 15_043_446, AllocsPerOp: fptr(29)},
		{Name: "BenchmarkExactParallel/serial", NsPerOp: 5_822_818, AllocsPerOp: fptr(1)},
		{Name: "BenchmarkExactParallel/parallel=all", NsPerOp: 4_984_318, AllocsPerOp: fptr(2)},
		{Name: "BenchmarkEstimateTick/sym/n=64/r=3/steady", NsPerOp: 401_000, AllocsPerOp: fptr(139)},
		{Name: "BenchmarkEstimateTick/sym/n=200/r=6/alldirty", NsPerOp: 2_900_000, AllocsPerOp: fptr(139)},
		{Name: "BenchmarkServeCached/allocation", NsPerOp: 1_800, AllocsPerOp: fptr(0)},
		{Name: "BenchmarkServeLive/allocation/p99", NsPerOp: 900_000},
		{Name: "BenchmarkServeLive/tick/p99", NsPerOp: 5_400_000},
	}
}

func defaultCfg(t *testing.T) gateConfig {
	t.Helper()
	cfg := gateConfig{
		tolerance:     0.15,
		liveTolerance: 0.60,
		allocSlack:    2,
		minNsDelta:    500,
	}
	for _, p := range defaultHeadlines {
		cfg.headlines = append(cfg.headlines, regexp.MustCompile(p))
	}
	return cfg
}

// TestGatePassesOnIdenticalTrajectory: the committed snapshot compared
// against itself must pass — the CI steady state.
func TestGatePassesOnIdenticalTrajectory(t *testing.T) {
	var out bytes.Buffer
	if !runGate(trajectory(), trajectory(), defaultCfg(t), &out) {
		t.Fatalf("identical trajectory failed the gate:\n%s", out.String())
	}
}

// TestGateFailsOnInjectedRegression: a deliberate >15% ns/op slowdown
// in one headline bench must fail the gate — the acceptance scenario.
func TestGateFailsOnInjectedRegression(t *testing.T) {
	fresh := trajectory()
	for i := range fresh {
		if fresh[i].Name == "BenchmarkEstimateTick/n=16/steady/plan=true" {
			fresh[i].NsPerOp *= 1.20 // +20%, over the 15% tolerance
		}
	}
	var out bytes.Buffer
	if runGate(trajectory(), fresh, defaultCfg(t), &out) {
		t.Fatalf("injected +20%% regression passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL BenchmarkEstimateTick/n=16/steady/plan=true") {
		t.Fatalf("failure not attributed to the regressed bench:\n%s", out.String())
	}
}

// TestGateFailsOnAllocRegression: the zero-alloc serving pin — allocs
// creeping past the absolute slack fails even when ns/op is fine.
func TestGateFailsOnAllocRegression(t *testing.T) {
	fresh := trajectory()
	for i := range fresh {
		if fresh[i].Name == "BenchmarkServeCached/allocation" {
			fresh[i].AllocsPerOp = fptr(3) // 0 -> 3, over the slack of 2
		}
	}
	var out bytes.Buffer
	if runGate(trajectory(), fresh, defaultCfg(t), &out) {
		t.Fatalf("alloc regression 0->3 passed the gate:\n%s", out.String())
	}
}

// TestGateAllowsSmallAllocJitter: 0 -> 2 allocs is within the absolute
// slack (map growth across benchtime) and must not fail.
func TestGateAllowsSmallAllocJitter(t *testing.T) {
	fresh := trajectory()
	for i := range fresh {
		if fresh[i].Name == "BenchmarkServeCached/allocation" {
			fresh[i].AllocsPerOp = fptr(2)
		}
	}
	var out bytes.Buffer
	if !runGate(trajectory(), fresh, defaultCfg(t), &out) {
		t.Fatalf("in-slack alloc jitter failed the gate:\n%s", out.String())
	}
}

// TestGateFailsOnMissingHeadline: deleting a gated bench must fail —
// otherwise removing the benchmark silently un-gates its regression.
func TestGateFailsOnMissingHeadline(t *testing.T) {
	var fresh []Result
	for _, r := range trajectory() {
		if r.Name != "BenchmarkExactParallel/serial" {
			fresh = append(fresh, r)
		}
	}
	var out bytes.Buffer
	if runGate(trajectory(), fresh, defaultCfg(t), &out) {
		t.Fatalf("missing headline bench passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "missing from fresh") {
		t.Fatalf("missing bench not reported:\n%s", out.String())
	}
}

// TestGateIgnoresTinyNsJitter: a 30% swing on a 1.8µs bench is under
// the absolute -min-ns-delta floor and must not fail.
func TestGateIgnoresTinyNsJitter(t *testing.T) {
	fresh := trajectory()
	for i := range fresh {
		if fresh[i].Name == "BenchmarkServeCached/allocation" {
			fresh[i].NsPerOp = 2_300 // +28% but only +500ns absolute
		}
	}
	var out bytes.Buffer
	if !runGate(trajectory(), fresh, defaultCfg(t), &out) {
		t.Fatalf("sub-delta ns jitter failed the gate:\n%s", out.String())
	}
}

// TestGateLiveToleranceLooser: a +40% p99 on a live arm passes (inside
// the 60% live tolerance) while the same swing on EstimateTick fails.
func TestGateLiveToleranceLooser(t *testing.T) {
	fresh := trajectory()
	for i := range fresh {
		if fresh[i].Name == "BenchmarkServeLive/allocation/p99" {
			fresh[i].NsPerOp *= 1.40
		}
	}
	var out bytes.Buffer
	if !runGate(trajectory(), fresh, defaultCfg(t), &out) {
		t.Fatalf("+40%% on a live arm should be inside the 60%% live tolerance:\n%s", out.String())
	}
}

// TestGateImprovementsPass: getting faster is never a failure.
func TestGateImprovementsPass(t *testing.T) {
	fresh := trajectory()
	for i := range fresh {
		fresh[i].NsPerOp *= 0.5
	}
	var out bytes.Buffer
	if !runGate(trajectory(), fresh, defaultCfg(t), &out) {
		t.Fatalf("across-the-board speedup failed the gate:\n%s", out.String())
	}
}

// TestNormalizeStripsGOMAXPROCSSuffix: multi-core CI runners append -N
// to bench names; identity must survive the machine change.
func TestNormalizeStripsGOMAXPROCSSuffix(t *testing.T) {
	if got := normalize("BenchmarkExactParallel/parallel=all-8"); got != "BenchmarkExactParallel/parallel=all" {
		t.Fatalf("normalize = %q", got)
	}
	if got := normalize("BenchmarkEstimateTick/n=16/steady/plan=true"); got != "BenchmarkEstimateTick/n=16/steady/plan=true" {
		t.Fatalf("suffix-free name mangled: %q", got)
	}
	// Cross-machine match end to end: suffixed fresh vs bare baseline.
	fresh := trajectory()
	for i := range fresh {
		fresh[i].Name += "-8"
	}
	var out bytes.Buffer
	if !runGate(trajectory(), fresh, defaultCfg(t), &out) {
		t.Fatalf("suffixed fresh names failed to match bare baseline:\n%s", out.String())
	}
}

// TestGateNewBenchFamilyIsNote: a headline pattern matching only fresh
// results (a brand-new bench family) is a note, not a failure — it
// starts gating once the baseline is re-snapshotted.
func TestGateNewBenchFamilyIsNote(t *testing.T) {
	var base []Result
	for _, r := range trajectory() {
		if !strings.HasPrefix(r.Name, "BenchmarkServeLive/") {
			base = append(base, r)
		}
	}
	var out bytes.Buffer
	if !runGate(base, trajectory(), defaultCfg(t), &out) {
		t.Fatalf("new bench family caused failure:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "not in baseline yet") {
		t.Fatalf("new family not noted:\n%s", out.String())
	}
}

// TestGateFailsOnDeadPattern: a pattern matching nothing anywhere is a
// config error, not a silent pass.
func TestGateFailsOnDeadPattern(t *testing.T) {
	cfg := defaultCfg(t)
	cfg.headlines = []*regexp.Regexp{regexp.MustCompile(`^BenchmarkDoesNotExist$`)}
	var out bytes.Buffer
	if runGate(trajectory(), trajectory(), cfg, &out) {
		t.Fatalf("dead headline pattern passed the gate:\n%s", out.String())
	}
}
