// Command benchgate makes the BENCH_*.json trajectory enforceable: it
// diffs a fresh benchjson snapshot against the committed baseline and
// fails (exit 1) when a headline benchmark regressed beyond the
// tolerance — ns/op for speed, allocs/op for the zero-allocation pins.
//
// Usage:
//
//	benchgate -baseline BENCH_2026-08-08.json -fresh /tmp/fresh.json \
//	          [-tolerance 0.15] [-live-tolerance 0.60] [-alloc-slack 2] \
//	          [-min-ns-delta 500] [-headline re1,re2,...]
//
// The headline set defaults to the benches the ROADMAP names as the
// performance contract: EstimateTick n=16 steady/all-dirty on the
// compiled plan, ExactParallel serial + all-core, every
// symmetry-collapsed arm, and the serving-path benches
// (BenchmarkServeCached allocs pins and the powerbench
// BenchmarkServeLive p99 arms). A headline bench missing from the fresh
// snapshot is a failure — a deleted benchmark silently un-gates its
// regression. Improvements always pass; bless an intentional regression
// by re-snapshotting the baseline (`make bench-json`) and committing it,
// with the justification in the commit message.
//
// Gate semantics, tuned so the gate is strict where measurements are
// deterministic and tolerant where they are not:
//
//   - allocs/op is machine-independent: any increase beyond the small
//     absolute slack fails at any magnitude.
//   - ns/op must exceed BOTH the relative tolerance and -min-ns-delta to
//     fail, so sub-microsecond benches are not failed on scheduler
//     jitter that is invisible at the multi-millisecond scale the
//     tolerance is meant to police.
//   - BenchmarkServeLive arms are wall-clock p99s of a live daemon under
//     socket load; they get the looser -live-tolerance.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strings"

	"vmpower/internal/cliutil"
)

// Result mirrors cmd/benchjson's output object (the subset the gate
// reads).
type Result struct {
	Name        string   `json:"name"`
	NsPerOp     float64  `json:"ns_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// defaultHeadlines is the enforced performance contract.
var defaultHeadlines = []string{
	`^BenchmarkEstimateTick/n=16/(steady|alldirty)/plan=true$`,
	`^BenchmarkExactParallel/(serial|parallel=all)$`,
	`^BenchmarkEstimateTick/sym/`,
	`^BenchmarkServeCached/`,
	`^BenchmarkServeLive/`,
}

type gateConfig struct {
	tolerance     float64
	liveTolerance float64
	allocSlack    float64
	minNsDelta    float64
	headlines     []*regexp.Regexp
}

// cpuSuffix is the -N GOMAXPROCS suffix `go test -bench` appends on
// multi-core machines; stripped so snapshots from different machines
// compare by benchmark identity.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

func normalize(name string) string {
	return cpuSuffix.ReplaceAllString(name, "")
}

// index maps normalized names to results; the first occurrence wins.
func index(results []Result) map[string]Result {
	out := make(map[string]Result, len(results))
	for _, r := range results {
		name := normalize(r.Name)
		if _, ok := out[name]; !ok {
			out[name] = r
		}
	}
	return out
}

// runGate compares fresh against baseline and writes the verdict table.
// It returns false when any headline bench regressed or went missing.
func runGate(baseline, fresh []Result, cfg gateConfig, w io.Writer) bool {
	base := index(baseline)
	cur := index(fresh)
	ok := true
	fail := func(format string, args ...any) {
		ok = false
		fmt.Fprintf(w, "FAIL "+format+"\n", args...)
	}
	for _, re := range cfg.headlines {
		matched := 0
		for name, b := range base {
			if !re.MatchString(name) {
				continue
			}
			matched++
			f, found := cur[name]
			if !found {
				fail("%s: headline bench missing from fresh snapshot", name)
				continue
			}
			tol := cfg.tolerance
			if strings.HasPrefix(name, "BenchmarkServeLive/") {
				tol = cfg.liveTolerance
			}
			if f.NsPerOp > b.NsPerOp*(1+tol) && f.NsPerOp-b.NsPerOp > cfg.minNsDelta {
				fail("%s: ns/op %.0f -> %.0f (+%.1f%%, tolerance %.0f%%)",
					name, b.NsPerOp, f.NsPerOp,
					100*(f.NsPerOp-b.NsPerOp)/b.NsPerOp, 100*tol)
				continue
			}
			if b.AllocsPerOp != nil {
				if f.AllocsPerOp == nil {
					fail("%s: baseline has allocs/op but fresh does not (run with -benchmem)", name)
					continue
				}
				if *f.AllocsPerOp > *b.AllocsPerOp*(1+cfg.tolerance)+cfg.allocSlack {
					fail("%s: allocs/op %.0f -> %.0f (slack %.0f)",
						name, *b.AllocsPerOp, *f.AllocsPerOp, cfg.allocSlack)
					continue
				}
			}
			fmt.Fprintf(w, "ok   %s: ns/op %.0f -> %.0f\n", name, b.NsPerOp, f.NsPerOp)
		}
		if matched == 0 {
			// A pattern with no baseline benches gates nothing. Fresh-only
			// matches mean a new bench family awaiting its first committed
			// snapshot — report, don't fail.
			freshOnly := 0
			for name := range cur {
				if re.MatchString(name) {
					freshOnly++
				}
			}
			if freshOnly > 0 {
				fmt.Fprintf(w, "note %s: %d new bench(es) not in baseline yet; re-snapshot to start gating them\n",
					re, freshOnly)
			} else {
				fail("%s: headline pattern matches nothing in baseline or fresh", re)
			}
		}
	}
	return ok
}

func load(path string) ([]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []Result
	if err := json.NewDecoder(f).Decode(&out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

func main() {
	basePath := flag.String("baseline", "", "committed benchjson trajectory snapshot")
	freshPath := flag.String("fresh", "", "freshly measured benchjson snapshot")
	tolerance := flag.Float64("tolerance", 0.15, "relative ns/op (and allocs/op) regression tolerance")
	liveTol := flag.Float64("live-tolerance", 0.60, "tolerance for BenchmarkServeLive wall-clock arms")
	allocSlack := flag.Float64("alloc-slack", 2, "absolute allocs/op slack on top of the relative tolerance")
	minNsDelta := flag.Float64("min-ns-delta", 500, "ns/op regressions smaller than this absolute delta never fail")
	headlines := flag.String("headline", "", "comma list of headline regexes (default: the built-in contract)")
	version := cliutil.VersionFlag(nil)
	flag.Parse()
	if *version {
		cliutil.PrintVersion(os.Stdout, "benchgate")
		return
	}
	if *basePath == "" || *freshPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline and -fresh are required")
		os.Exit(2)
	}
	pats := defaultHeadlines
	if *headlines != "" {
		pats = strings.Split(*headlines, ",")
	}
	cfg := gateConfig{
		tolerance:     *tolerance,
		liveTolerance: *liveTol,
		allocSlack:    *allocSlack,
		minNsDelta:    *minNsDelta,
	}
	for _, p := range pats {
		re, err := regexp.Compile(strings.TrimSpace(p))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: bad headline %q: %v\n", p, err)
			os.Exit(2)
		}
		cfg.headlines = append(cfg.headlines, re)
	}
	baseline, err := load(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if !runGate(baseline, fresh, cfg, os.Stdout) {
		fmt.Fprintln(os.Stdout, "benchgate: FAILED — see regressions above; bless intentional ones by re-snapshotting the baseline")
		os.Exit(1)
	}
	fmt.Fprintln(os.Stdout, "benchgate: all headline benches within tolerance")
}
