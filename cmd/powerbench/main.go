// Command powerbench is the in-repo load generator for the serving
// path: it drives N concurrent HTTP clients against a live powerd and
// reports per-endpoint p50/p99 latency and throughput, plus
// ticks-disturbed — the number of estimation ticks whose Step latency
// degraded beyond 2x the unloaded baseline p99 while the scrape storm
// ran. That last number is the one the tick-publishing architecture
// exists to keep at zero: handlers serve pre-encoded snapshot bytes, so
// request volume should not contend with the tick loop.
//
// By default powerbench is self-hosted: it boots a powerd over a real
// listener (calibration included), measures an unloaded tick-latency
// baseline, then applies load while continuing to tick. Against an
// external daemon (-addr), it reports request latencies only —
// tick disturbance needs the Step loop in-process.
//
// Usage:
//
//	powerbench [-clients N] [-duration D] [-interval D] [-warmup N]
//	           [-endpoints list] [-vms specs] [-seed N] [-gobench]
//	powerbench -addr host:port [-clients N] [-duration D] [-endpoints list]
//
// With -gobench the report is emitted as `go test -bench` lines
// (BenchmarkServeLive/<endpoint>/p99 ...) so `benchjson` can archive it
// into the BENCH_*.json trajectory and `benchgate` can enforce it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"vmpower/internal/cliutil"
	"vmpower/internal/core"
	"vmpower/internal/hypervisor"
	"vmpower/internal/machine"
	"vmpower/internal/meter"
	"vmpower/internal/obs"
	"vmpower/internal/powerd"
	"vmpower/internal/vm"
	"vmpower/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "powerbench:", err)
		os.Exit(1)
	}
}

// benchConfig is the parsed command line.
type benchConfig struct {
	addr      string
	clients   int
	duration  time.Duration
	interval  time.Duration
	warmup    int
	endpoints []string
	vms       string
	seed      int64
	gobench   bool
}

// endpointStats is the merged latency report for one endpoint.
type endpointStats struct {
	endpoint string
	path     string
	requests int
	errors   int
	p50      time.Duration
	p99      time.Duration
	qps      float64
}

// report is the full benchmark result.
type report struct {
	stats []endpointStats
	// Tick-loop disturbance (self-hosted mode only; external runs keep
	// loadTicks == 0 and print n/a).
	baselineP99 time.Duration
	tickP99     time.Duration
	loadTicks   int
	disturbed   int
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("powerbench", flag.ContinueOnError)
	cfg := benchConfig{}
	fs.StringVar(&cfg.addr, "addr", "", "benchmark an external daemon at this address instead of self-hosting one")
	fs.IntVar(&cfg.clients, "clients", 8, "concurrent clients per endpoint")
	fs.DurationVar(&cfg.duration, "duration", 5*time.Second, "load duration")
	fs.DurationVar(&cfg.interval, "interval", 100*time.Millisecond, "tick interval of the self-hosted daemon")
	fs.IntVar(&cfg.warmup, "warmup", 30, "unloaded ticks measured for the baseline tick latency (self-hosted mode)")
	eps := fs.String("endpoints", "allocation,status,energy", "comma list of endpoints to load (allocation, status, energy, history, interactions, healthz, or full paths)")
	fs.StringVar(&cfg.vms, "vms", "web:small,db:medium,cache:small,batch:large", "VM specs for the self-hosted daemon")
	fs.Int64Var(&cfg.seed, "seed", 1, "random seed")
	fs.BoolVar(&cfg.gobench, "gobench", false, "emit the report as go-test benchmark lines for benchjson/benchgate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	for _, e := range strings.Split(*eps, ",") {
		e = strings.TrimSpace(e)
		if e != "" {
			cfg.endpoints = append(cfg.endpoints, e)
		}
	}
	if len(cfg.endpoints) == 0 {
		return errors.New("no endpoints to benchmark")
	}
	if cfg.clients < 1 {
		return errors.New("clients must be >= 1")
	}
	rep, err := bench(cfg)
	if err != nil {
		return err
	}
	if cfg.gobench {
		writeGobench(out, rep)
	} else {
		writeText(out, rep)
	}
	return nil
}

// pathOf maps an endpoint shorthand to its URL path.
func pathOf(endpoint string) string {
	if strings.HasPrefix(endpoint, "/") {
		return endpoint
	}
	if endpoint == "healthz" {
		return "/healthz"
	}
	return "/api/v1/" + endpoint
}

// bench runs the configured benchmark: against -addr when set,
// otherwise against a freshly booted in-process powerd.
func bench(cfg benchConfig) (*report, error) {
	if cfg.addr != "" {
		rep := &report{}
		rep.stats = loadPhase(cfg, "http://"+cfg.addr, nil)
		return rep, nil
	}
	return benchSelf(cfg)
}

// benchSelf boots a powerd on a loopback listener, establishes the
// unloaded tick-latency baseline, then applies the load while the tick
// loop keeps running — the contended phase the report is about.
func benchSelf(cfg benchConfig) (*report, error) {
	srv, err := bootDaemon(cfg)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go httpSrv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
	}()
	baseURL := "http://" + ln.Addr().String()

	// Unloaded baseline: warmup ticks, each latency recorded.
	if cfg.warmup < 5 {
		cfg.warmup = 5
	}
	baseline := make([]time.Duration, 0, cfg.warmup)
	for i := 0; i < cfg.warmup; i++ {
		t0 := time.Now()
		if _, err := srv.Step(); err != nil {
			return nil, fmt.Errorf("baseline tick: %w", err)
		}
		baseline = append(baseline, time.Since(t0))
	}
	rep := &report{baselineP99: percentile(baseline, 0.99)}

	// Load phase: clients hammer while the tick loop continues at the
	// configured cadence on this goroutine.
	var tickLat []time.Duration
	stepper := func(stop <-chan struct{}) {
		ticker := time.NewTicker(cfg.interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				t0 := time.Now()
				if _, err := srv.Step(); err != nil {
					return
				}
				tickLat = append(tickLat, time.Since(t0))
			}
		}
	}
	rep.stats = loadPhase(cfg, baseURL, stepper)

	rep.loadTicks = len(tickLat)
	rep.tickP99 = percentile(tickLat, 0.99)
	threshold := 2 * rep.baselineP99
	for _, d := range tickLat {
		if d > threshold {
			rep.disturbed++
		}
	}
	return rep, nil
}

// loadPhase runs cfg.clients concurrent clients per endpoint for
// cfg.duration against baseURL and merges the latency samples. stepper,
// when non-nil, runs on the caller's behalf for the same window (the
// self-hosted tick loop).
func loadPhase(cfg benchConfig, baseURL string, stepper func(stop <-chan struct{})) []endpointStats {
	transport := &http.Transport{
		MaxIdleConns:        cfg.clients * len(cfg.endpoints),
		MaxIdleConnsPerHost: cfg.clients * len(cfg.endpoints),
	}
	client := &http.Client{Transport: transport, Timeout: 10 * time.Second}
	defer transport.CloseIdleConnections()

	type worker struct {
		samples []time.Duration
		errors  int
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	workers := make([][]*worker, len(cfg.endpoints))
	for i, ep := range cfg.endpoints {
		url := baseURL + pathOf(ep)
		workers[i] = make([]*worker, cfg.clients)
		for c := 0; c < cfg.clients; c++ {
			w := &worker{}
			workers[i][c] = w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					t0 := time.Now()
					resp, err := client.Get(url)
					if err != nil {
						w.errors++
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode >= 400 {
						w.errors++
						continue
					}
					w.samples = append(w.samples, time.Since(t0))
				}
			}()
		}
	}

	stepDone := make(chan struct{})
	if stepper != nil {
		go func() {
			defer close(stepDone)
			stepper(stop)
		}()
	} else {
		close(stepDone)
	}
	time.Sleep(cfg.duration)
	close(stop)
	wg.Wait()
	<-stepDone

	stats := make([]endpointStats, len(cfg.endpoints))
	for i, ep := range cfg.endpoints {
		var merged []time.Duration
		errs := 0
		for _, w := range workers[i] {
			merged = append(merged, w.samples...)
			errs += w.errors
		}
		sort.Slice(merged, func(a, b int) bool { return merged[a] < merged[b] })
		stats[i] = endpointStats{
			endpoint: ep,
			path:     pathOf(ep),
			requests: len(merged),
			errors:   errs,
			p50:      percentile(merged, 0.50),
			p99:      percentile(merged, 0.99),
			qps:      float64(len(merged)) / cfg.duration.Seconds(),
		}
	}
	return stats
}

// percentile returns the q-quantile of samples (sorted or not).
func percentile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	idx := int(q * float64(len(s)-1))
	return s[idx]
}

// bootDaemon builds the self-hosted powerd: the same simulated Xeon
// deployment cmd/powerd runs, calibrated with a shortened offline phase
// (the load test needs a realistic serving surface, not a precise
// model).
func bootDaemon(cfg benchConfig) (*powerd.Server, error) {
	mach, err := machine.New(machine.XeonProfile(), machine.Pack)
	if err != nil {
		return nil, err
	}
	parsed, err := cliutil.ParseVMSpecs(cfg.vms, false)
	if err != nil {
		return nil, err
	}
	vms := make([]vm.VM, len(parsed))
	names := make([]string, len(parsed))
	for i, p := range parsed {
		vms[i] = vm.VM{Name: p.Name, Type: p.Type}
		names[i] = p.Name
	}
	set, err := vm.NewSet(vm.PaperCatalog(), vms)
	if err != nil {
		return nil, err
	}
	host, err := hypervisor.NewHost(mach, set)
	if err != nil {
		return nil, err
	}
	sim, err := meter.NewSim(host.PowerSource(), meter.SimOptions{
		NoiseStdDev: 0.25, Resolution: 0.1, Seed: cfg.seed,
	})
	if err != nil {
		return nil, err
	}
	est, err := core.New(host, sim, core.Config{
		Seed:                 cfg.seed,
		OfflineTicksPerCombo: 20,
		IdleMeasureTicks:     5,
	})
	if err != nil {
		return nil, err
	}
	if err := est.CollectOffline(); err != nil {
		return nil, err
	}
	suite := []string{"gcc", "gobmk", "sjeng", "omnetpp", "namd", "wrf", "tonto"}
	for i := range vms {
		gen, err := workload.ByName(suite[i%len(suite)], cfg.seed+int64(i))
		if err != nil {
			return nil, err
		}
		if err := host.Attach(vm.ID(i), gen); err != nil {
			return nil, err
		}
	}
	host.SetCoalition(vm.GrandCoalition(set.Len()))
	srv, err := powerd.New(est, names, 600)
	if err != nil {
		return nil, err
	}
	if err := srv.SetInterval(cfg.interval); err != nil {
		return nil, err
	}
	srv.Instrument(obs.NewRegistry(),
		obs.NewLogger(io.Discard, obs.LevelError, obs.FormatKV), cfg.interval)
	return srv, nil
}

// writeText prints the human-readable report.
func writeText(w io.Writer, rep *report) {
	fmt.Fprintf(w, "%-16s %10s %8s %12s %12s %10s\n",
		"endpoint", "requests", "errors", "p50", "p99", "qps")
	for _, s := range rep.stats {
		fmt.Fprintf(w, "%-16s %10d %8d %12s %12s %10.0f\n",
			s.endpoint, s.requests, s.errors, s.p50, s.p99, s.qps)
	}
	if rep.loadTicks > 0 {
		fmt.Fprintf(w, "\nticks under load:    %d\n", rep.loadTicks)
		fmt.Fprintf(w, "baseline tick p99:   %s\n", rep.baselineP99)
		fmt.Fprintf(w, "loaded tick p99:     %s\n", rep.tickP99)
		fmt.Fprintf(w, "ticks disturbed:     %d (Step latency > 2x unloaded p99)\n", rep.disturbed)
	} else {
		fmt.Fprintf(w, "\nticks disturbed:     n/a (external daemon; run self-hosted for tick disturbance)\n")
	}
}

// writeGobench prints the report as `go test -bench` lines so benchjson
// archives it (ns/op carries the p99; p50 and qps land in "extra").
func writeGobench(w io.Writer, rep *report) {
	for _, s := range rep.stats {
		if s.requests == 0 {
			continue
		}
		fmt.Fprintf(w, "BenchmarkServeLive/%s/p99 %d %d ns/op %d p50-ns %.0f qps\n",
			s.endpoint, s.requests, s.p99.Nanoseconds(), s.p50.Nanoseconds(), s.qps)
	}
	if rep.loadTicks > 0 {
		fmt.Fprintf(w, "BenchmarkServeLive/tick/p99 %d %d ns/op %d disturbed\n",
			rep.loadTicks, rep.tickP99.Nanoseconds(), rep.disturbed)
	}
}
