package main

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestSelfHostedBench boots the in-process daemon, applies a short
// load, and checks the report carries per-endpoint p50/p99 and the
// tick-disturbance accounting the tool exists to measure.
func TestSelfHostedBench(t *testing.T) {
	cfg := benchConfig{
		clients:   2,
		duration:  300 * time.Millisecond,
		interval:  10 * time.Millisecond,
		warmup:    5,
		endpoints: []string{"allocation", "status"},
		vms:       "web:small,db:medium",
		seed:      1,
	}
	rep, err := bench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.stats) != 2 {
		t.Fatalf("stats for %d endpoints, want 2", len(rep.stats))
	}
	for _, s := range rep.stats {
		if s.requests == 0 {
			t.Fatalf("%s: no requests completed", s.endpoint)
		}
		if s.errors != 0 {
			t.Fatalf("%s: %d request errors", s.endpoint, s.errors)
		}
		if s.p99 < s.p50 {
			t.Fatalf("%s: p99 %v < p50 %v", s.endpoint, s.p99, s.p50)
		}
		if s.qps <= 0 {
			t.Fatalf("%s: qps %v", s.endpoint, s.qps)
		}
	}
	if rep.loadTicks == 0 {
		t.Fatal("no ticks ran under load")
	}
	if rep.baselineP99 <= 0 || rep.tickP99 <= 0 {
		t.Fatalf("tick latencies not measured: baseline %v loaded %v", rep.baselineP99, rep.tickP99)
	}
	if rep.disturbed < 0 || rep.disturbed > rep.loadTicks {
		t.Fatalf("disturbed %d out of %d load ticks", rep.disturbed, rep.loadTicks)
	}

	// The gobench rendering must be benchjson-parsable: even field
	// count, iterations at field 1, ns/op present.
	var buf bytes.Buffer
	writeGobench(&buf, rep)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // two endpoints + the tick arm
		t.Fatalf("gobench lines = %d, want 3:\n%s", len(lines), buf.String())
	}
	lineRE := regexp.MustCompile(`^BenchmarkServeLive/[a-z]+(/p99)? \d+ \d+ ns/op( [\d.]+ [a-z0-9-]+)*$`)
	for _, line := range lines {
		if !lineRE.MatchString(line) {
			t.Fatalf("gobench line not parsable: %q", line)
		}
		if n := len(strings.Fields(line)); n%2 != 0 {
			t.Fatalf("odd field count %d: %q", n, line)
		}
	}
	if !strings.Contains(buf.String(), "disturbed") {
		t.Fatalf("tick arm must report the disturbed count:\n%s", buf.String())
	}
}

// TestPathOf pins the endpoint shorthand mapping.
func TestPathOf(t *testing.T) {
	for in, want := range map[string]string{
		"allocation":   "/api/v1/allocation",
		"healthz":      "/healthz",
		"/custom/path": "/custom/path",
	} {
		if got := pathOf(in); got != want {
			t.Errorf("pathOf(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPercentile pins the quantile index math.
func TestPercentile(t *testing.T) {
	samples := []time.Duration{5, 1, 4, 2, 3} // sorted: 1..5
	if got := percentile(samples, 0.50); got != 3 {
		t.Fatalf("p50 = %v, want 3", got)
	}
	if got := percentile(samples, 0.99); got != 4 {
		t.Fatalf("p99 over 5 samples = %v, want 4 (index floor)", got)
	}
	if got := percentile(nil, 0.99); got != 0 {
		t.Fatalf("empty samples: %v, want 0", got)
	}
}
