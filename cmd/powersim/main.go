// Command powersim boots the simulated prototype and streams live per-VM
// power estimates — the paper's Fig. 8 online pipeline as a CLI.
//
// Usage:
//
//	powersim [-machine xeon16|pentium] [-vms spec,spec,...] [-ticks N]
//	         [-seed N] [-idle none|equal|proportional] [-interval dur] [-csv]
//	         [-parallelism N]
//
// Each VM spec is name:type with type one of small, medium, large, xlarge:
//
//	powersim -vms web:small,db:large -ticks 20
//
// Workloads are assigned round-robin from the SPEC-like suite; use
// -workloads to override (comma list matched to the VM list).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"vmpower"
	"vmpower/internal/cliutil"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "powersim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		machineName = flag.String("machine", "xeon16", "machine profile: xeon16 or pentium")
		vmsFlag     = flag.String("vms", "vm1a:small,vm1b:small,vm2:medium,vm3:large,vm4:xlarge", "comma list of name:type VM specs")
		workloads   = flag.String("workloads", "", "comma list of benchmarks matched to -vms (default: round-robin SPEC suite)")
		ticks       = flag.Int("ticks", 30, "online estimation ticks to run")
		seed        = flag.Int64("seed", 1, "random seed")
		idle        = flag.String("idle", "none", "idle-power attribution: none, equal or proportional")
		interval    = flag.Duration("interval", 0, "wall-clock delay between ticks (0 = as fast as possible; 1s mimics the prototype)")
		csv         = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		record      = flag.String("record", "", "write a replay trace (JSON lines) to this file; feed it to vmbill -replay")
		par         = flag.Int("parallelism", 0, "Shapley engine workers (0 = all cores, 1 = serial); allocations are identical at any setting")
		version     = cliutil.VersionFlag(nil)
		logCfg      = cliutil.LogFlags(nil)
		faultCfg    = cliutil.FaultFlags(nil)
	)
	flag.Parse()
	if *version {
		cliutil.PrintVersion(os.Stdout, "powersim")
		return nil
	}

	logger, err := logCfg.Logger(os.Stderr)
	if err != nil {
		return err
	}

	var model vmpower.MachineModel
	switch *machineName {
	case "xeon16":
		model = vmpower.Xeon16
	case "pentium":
		model = vmpower.Pentium
	default:
		return fmt.Errorf("unknown machine %q", *machineName)
	}

	parsed, err := cliutil.ParseVMSpecs(*vmsFlag, false)
	if err != nil {
		return err
	}
	specs := make([]vmpower.VMSpec, len(parsed))
	for i, p := range parsed {
		specs[i] = vmpower.VMSpec{Name: p.Name, Type: vmpower.VMType(p.Type)}
	}

	parallelism := *par
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	sys, err := vmpower.New(vmpower.Config{
		Machine:         model,
		VMs:             specs,
		Seed:            *seed,
		IdleAttribution: *idle,
		Parallelism:     parallelism,
	})
	if err != nil {
		return err
	}

	if faultCfg.Active() {
		opts, err := faultCfg.Options(*seed)
		if err != nil {
			return err
		}
		if err := sys.InjectFaults(opts); err != nil {
			return err
		}
		logger.Info("fault injection enabled",
			"dropout", opts.DropoutProb, "spike", opts.SpikeProb,
			"nan", opts.NaNProb, "stuck", faultCfg.Stuck, "seed", opts.Seed)
	}

	logger.Info("calibrating", "vms", len(specs), "machine", *machineName)
	start := time.Now()
	if err := sys.Calibrate(); err != nil {
		return err
	}
	logger.Info("calibrated",
		"elapsed", time.Since(start).Round(time.Millisecond).String(),
		"idle_watts", sys.IdlePower())

	suite := []string{"gcc", "gobmk", "sjeng", "omnetpp", "namd", "wrf", "tonto"}
	var assigned []string
	if *workloads != "" {
		assigned = strings.Split(*workloads, ",")
		if len(assigned) != len(specs) {
			return fmt.Errorf("-workloads lists %d entries for %d VMs", len(assigned), len(specs))
		}
	} else {
		for i := range specs {
			assigned = append(assigned, suite[i%len(suite)])
		}
	}
	for i, spec := range specs {
		if err := sys.RunWorkload(spec.Name, strings.TrimSpace(assigned[i]), *seed+int64(i)); err != nil {
			return err
		}
		logger.Info("workload attached", "vm", spec.Name, "benchmark", strings.TrimSpace(assigned[i]))
	}

	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			return fmt.Errorf("creating trace %s: %w", *record, err)
		}
		defer func() {
			if err := sys.StopRecording(); err != nil {
				logger.Error("flushing trace", "err", err)
			}
			if err := f.Close(); err != nil {
				logger.Error("closing trace", "err", err)
			}
		}()
		if err := sys.StartRecording(f); err != nil {
			return err
		}
		logger.Info("recording trace", "path", *record)
	}

	names := sys.VMNames()
	if *csv {
		fmt.Printf("tick,measured,dynamic")
		for _, n := range names {
			fmt.Printf(",%s", n)
		}
		fmt.Println()
	} else {
		fmt.Printf("%6s %9s %9s", "tick", "meter(W)", "dyn(W)")
		for _, n := range names {
			fmt.Printf(" %9s", n)
		}
		fmt.Println()
	}

	var degradedTicks int
	err = sys.Run(*ticks, func(a *vmpower.Allocation) bool {
		if a.Degraded() {
			degradedTicks++
		}
		if *csv {
			fmt.Printf("%d,%.2f,%.2f", a.Tick(), a.MeasuredPower(), a.DynamicPower())
			for _, n := range names {
				fmt.Printf(",%.3f", a.Watts(n))
			}
			fmt.Println()
		} else {
			fmt.Printf("%6d %9.1f %9.1f", a.Tick(), a.MeasuredPower(), a.DynamicPower())
			for _, n := range names {
				fmt.Printf(" %9.2f", a.Watts(n))
			}
			if a.Degraded() {
				fmt.Printf("  degraded(%s, age %d)", a.DegradedReason(), a.HoldoverAge())
			}
			fmt.Println()
		}
		if *interval > 0 {
			time.Sleep(*interval)
		}
		return true
	})
	if faultCfg.Active() {
		c := sys.FaultCounts()
		logger.Info("fault summary",
			"degraded_ticks", degradedTicks,
			"dropouts", c.Dropouts, "spikes", c.Spikes, "nans", c.NaNs,
			"stuck", c.Stuck, "errors", c.Errors)
	}
	return err
}
