// Command vmbill produces per-tenant energy bills from a simulated rental
// period, contrasting three accounting policies: flat type-based pricing
// (today's cloud practice), resource-usage-proportional rescaling, and
// the paper's Shapley value-based power accounting.
//
// Usage:
//
//	vmbill [-tenants spec,...] [-duration ticks] [-price $/kWh] [-seed N]
//
// Each tenant spec is name:type:benchmark, e.g. alice:small:gcc.
package main

import (
	"flag"
	"fmt"
	"os"

	"vmpower"
	"vmpower/internal/cliutil"
	"vmpower/internal/pricing"
	"vmpower/internal/vm"
)

// typeRate is a flat hourly price per VM type, standing in for EC2-style
// type-based pricing in the comparison column (USD/hour).
var typeRate = map[vmpower.VMType]float64{
	vmpower.Small:  0.023,
	vmpower.Medium: 0.046,
	vmpower.Large:  0.092,
	vmpower.XLarge: 0.184,
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vmbill:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		tenants    = flag.String("tenants", "alice:medium:wrf,bob:medium:sjeng,carol:small:gcc", "comma list of name:type:benchmark tenant specs")
		duration   = flag.Int("duration", 600, "rental period in simulated seconds")
		price      = flag.Float64("price", 0.10409, "electricity price, USD per kWh")
		seed       = flag.Int64("seed", 1, "random seed")
		replayPath = flag.String("replay", "", "bill a recorded trace (from powersim -record) instead of simulating workloads; -tenants must match the trace's VM layout")
		tou        = flag.Bool("tou", false, "bill under a time-of-use tariff (peak 16-21h at ~2x) instead of the flat -price")
		startHour  = flag.Int("start-hour", 14, "hour of day the rental period starts (used with -tou)")
		version    = cliutil.VersionFlag(nil)
	)
	flag.Parse()
	if *version {
		cliutil.PrintVersion(os.Stdout, "vmbill")
		return nil
	}

	type tenant struct {
		name  string
		typ   vmpower.VMType
		bench string
	}
	parsed, err := cliutil.ParseVMSpecs(*tenants, true)
	if err != nil {
		return err
	}
	list := make([]tenant, len(parsed))
	specs := make([]vmpower.VMSpec, len(parsed))
	for i, p := range parsed {
		typ := vmpower.VMType(p.Type)
		list[i] = tenant{name: p.Name, typ: typ, bench: p.Benchmark}
		specs[i] = vmpower.VMSpec{Name: p.Name, Type: typ}
	}

	sys, err := vmpower.New(vmpower.Config{
		Machine:         vmpower.Xeon16,
		VMs:             specs,
		Seed:            *seed,
		IdleAttribution: "proportional", // bill idle power too (Sec. VIII)
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "calibrating...")
	if err := sys.Calibrate(); err != nil {
		return err
	}

	energyWs := make(map[string]float64, len(list))
	series := make(map[string][]float64, len(list))
	accumulate := func(a *vmpower.Allocation) bool {
		for name, watts := range a.Shares() {
			energyWs[name] += watts
			series[name] = append(series[name], watts)
		}
		return true
	}
	ticks := *duration
	if *replayPath != "" {
		f, err := os.Open(*replayPath)
		if err != nil {
			return fmt.Errorf("opening trace: %w", err)
		}
		defer f.Close()
		count := 0
		if err := sys.Replay(f, func(a *vmpower.Allocation) bool {
			count++
			return accumulate(a)
		}); err != nil {
			return err
		}
		ticks = count
		fmt.Fprintf(os.Stderr, "billed %d recorded ticks from %s\n", count, *replayPath)
	} else {
		for i, tn := range list {
			if err := sys.RunWorkload(tn.name, tn.bench, *seed+int64(i)); err != nil {
				return err
			}
		}
		if err := sys.Run(ticks, accumulate); err != nil {
			return err
		}
	}

	if *tou {
		tariff := pricing.USSummerTOU()
		fmt.Printf("rental period: %d simulated seconds starting %02d:00; TOU tariff $%.3f peak (%d-%dh) / $%.3f off-peak per kWh\n\n",
			ticks, *startHour, tariff.PeakPricePerKWh, tariff.PeakStartHour, tariff.PeakEndHour, tariff.OffPeakPricePerKWh)
		fmt.Printf("%-10s %-8s %-10s %14s %12s %16s\n",
			"tenant", "type", "workload", "energy (kWh)", "peak share", "TOU bill ($)")
		for _, tn := range list {
			bill, peakShare, err := pricing.BillEnergyTOU(tn.name, series[tn.name], tariff, *startHour*3600)
			if err != nil {
				return err
			}
			fmt.Printf("%-10s %-8s %-10s %14.6f %11.1f%% %16.6f\n",
				tn.name, typeName(tn.typ), tn.bench, bill.EnergyKWh, peakShare*100, bill.AmountUSD)
		}
		return nil
	}

	fmt.Printf("rental period: %d simulated seconds; electricity at $%.4f/kWh\n\n", ticks, *price)
	fmt.Printf("%-10s %-8s %-10s %14s %16s %16s\n",
		"tenant", "type", "workload", "energy (kWh)", "energy bill ($)", "flat bill ($)")
	var totalEnergy float64
	for _, tn := range list {
		kwh := energyWs[tn.name] / 3.6e6
		totalEnergy += kwh
		flat := typeRate[tn.typ] * float64(ticks) / 3600
		fmt.Printf("%-10s %-8s %-10s %14.6f %16.6f %16.6f\n",
			tn.name, typeName(tn.typ), tn.bench, kwh, kwh**price, flat)
	}
	fmt.Printf("\ntotal attributed energy: %.6f kWh (= metered machine energy; Efficiency)\n", totalEnergy)
	return nil
}

func typeName(t vmpower.VMType) string {
	return cliutil.TypeName(vm.TypeID(t))
}
