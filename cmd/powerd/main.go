// Command powerd runs the power-accounting pipeline as a monitoring
// daemon: it calibrates a simulated deployment, drives the online
// estimator at a fixed interval, and serves live allocations, history and
// cumulative per-VM energy over HTTP/JSON.
//
// Usage:
//
//	powerd [-listen addr] [-vms name:type,...] [-interval dur] [-seed N]
//	       [-parallelism N] [-pprof] [-log-level L] [-log-format F]
//
// Endpoints:
//
//	GET /api/v1/status
//	GET /api/v1/allocation
//	GET /api/v1/history?n=K
//	GET /api/v1/energy
//	GET /api/v1/events?since=SEQ  (tick event journal)
//	GET /healthz
//	GET /metrics          (Prometheus text format)
//	GET /metrics.json
//	GET /debug/flight     (flight-recorder dump; SIGQUIT dumps to stderr)
//	GET /debug/pprof/*    (with -pprof)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"vmpower/internal/cliutil"
	"vmpower/internal/core"
	"vmpower/internal/faults"
	"vmpower/internal/hypervisor"
	"vmpower/internal/machine"
	"vmpower/internal/meter"
	"vmpower/internal/obs"
	"vmpower/internal/powerd"
	"vmpower/internal/vm"
	"vmpower/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "powerd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen    = flag.String("listen", "127.0.0.1:7077", "HTTP listen address")
		vmsFlag   = flag.String("vms", "vm1a:small,vm1b:small,vm2:medium,vm3:large,vm4:xlarge", "comma list of name:type VM specs")
		interval  = flag.Duration("interval", time.Second, "estimation interval (the paper's prototype samples at 1 Hz)")
		seed      = flag.Int64("seed", 1, "random seed")
		history   = flag.Int("history", 600, "allocation history ring size")
		saveModel = flag.String("save-model", "", "write the calibration model to this file after the offline phase")
		loadModel = flag.String("load-model", "", "skip the offline phase and load a model written by -save-model")
		par       = flag.Int("parallelism", 0, "Shapley engine workers (0 = all cores, 1 = serial); allocations are identical at any setting")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		holdover  = flag.Int("holdover", 10, "serve from the last good meter sample for up to this many ticks during an outage (negative disables)")
		stuckAt   = flag.Int("stuck-threshold", 0, "reject a reading repeated this many times in a row as a stuck meter (0 disables)")
		auditDeep = flag.Int("audit-deep", 60, "re-solve every Nth tick through the alternate exact path and compare (0 disables deep checks; the cheap per-tick audit always runs)")
		version   = cliutil.VersionFlag(nil)
		logCfg    = cliutil.LogFlags(nil)
		faultCfg  = cliutil.FaultFlags(nil)
	)
	flag.Parse()
	if *version {
		cliutil.PrintVersion(os.Stdout, "powerd")
		return nil
	}

	logger, err := logCfg.Logger(os.Stderr)
	if err != nil {
		return err
	}

	mach, err := machine.New(machine.XeonProfile(), machine.Pack)
	if err != nil {
		return err
	}
	parsed, err := cliutil.ParseVMSpecs(*vmsFlag, false)
	if err != nil {
		return err
	}
	vms := make([]vm.VM, len(parsed))
	names := make([]string, len(parsed))
	for i, p := range parsed {
		vms[i] = vm.VM{Name: p.Name, Type: p.Type}
		names[i] = p.Name
	}
	set, err := vm.NewSet(vm.PaperCatalog(), vms)
	if err != nil {
		return err
	}
	host, err := hypervisor.NewHost(mach, set)
	if err != nil {
		return err
	}
	sim, err := meter.NewSim(host.PowerSource(), meter.SimOptions{
		NoiseStdDev: 0.25, Resolution: 0.1, Seed: *seed,
	})
	if err != nil {
		return err
	}
	var m meter.Meter = sim
	var injector *faults.Meter
	if faultCfg.Active() {
		opts, err := faultCfg.Options(*seed)
		if err != nil {
			return err
		}
		// The injector starts disarmed, so calibration below always sees
		// the clean meter; chaos is armed just before the serve loop.
		if injector, err = faults.Wrap(sim, opts); err != nil {
			return err
		}
		m = injector
	}
	parallelism := *par
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	est, err := core.New(host, m, core.Config{
		Seed:           *seed,
		Parallelism:    parallelism,
		HoldoverTicks:  *holdover,
		StuckThreshold: *stuckAt,
	})
	if err != nil {
		return err
	}
	if *loadModel != "" {
		f, err := os.Open(*loadModel)
		if err != nil {
			return fmt.Errorf("opening model: %w", err)
		}
		err = est.LoadModel(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		logger.Info("loaded model", "path", *loadModel, "idle_watts", est.IdlePower())
	} else {
		logger.Info("calibrating")
		if err := est.CollectOffline(); err != nil {
			return err
		}
		logger.Info("calibrated", "idle_watts", est.IdlePower())
	}
	if *saveModel != "" {
		f, err := os.Create(*saveModel)
		if err != nil {
			return fmt.Errorf("creating model file: %w", err)
		}
		err = est.SaveModel(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		logger.Info("saved model", "path", *saveModel)
	}

	suite := []string{"gcc", "gobmk", "sjeng", "omnetpp", "namd", "wrf", "tonto"}
	for i := range vms {
		gen, err := workload.ByName(suite[i%len(suite)], *seed+int64(i))
		if err != nil {
			return err
		}
		if err := host.Attach(vm.ID(i), gen); err != nil {
			return err
		}
	}
	host.SetCoalition(vm.GrandCoalition(set.Len()))

	srv, err := powerd.New(est, names, *history)
	if err != nil {
		return err
	}
	// Energy integrates watts over the actual stepping cadence, not an
	// assumed 1 Hz.
	if err := srv.SetInterval(*interval); err != nil {
		return err
	}
	reg := obs.NewRegistry()
	srv.Instrument(reg, logger, *interval)
	srv.EnableAudit(core.AuditConfig{DeepEvery: *auditDeep})

	if injector != nil {
		injector.SetArmed(true)
		logger.Info("fault injection armed",
			"dropout", faultCfg.Dropout, "spike", faultCfg.Spike,
			"nan", faultCfg.NaN, "stuck", faultCfg.Stuck)
	}

	var handler http.Handler = srv.Handler()
	if *pprofOn {
		outer := http.NewServeMux()
		outer.Handle("/", handler)
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = outer
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGQUIT dumps the flight recorder to stderr without exiting — the
	// classic "what were the last few minutes" post-mortem trigger.
	quitCh := make(chan os.Signal, 1)
	signal.Notify(quitCh, syscall.SIGQUIT)
	defer signal.Stop(quitCh)

	httpSrv := &http.Server{Addr: *listen, Handler: handler, ReadHeaderTimeout: 5 * time.Second}
	errCh := make(chan error, 1)
	go func() {
		logger.Info("serving", "addr", *listen, "pprof", *pprofOn)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			return httpSrv.Shutdown(shutdownCtx)
		case err := <-errCh:
			return err
		case <-quitCh:
			logger.Warn("SIGQUIT: dumping flight recorder to stderr")
			if err := srv.DumpFlight(os.Stderr, "SIGQUIT"); err != nil {
				logger.Error("flight dump failed", "err", err)
			}
		case <-ticker.C:
			_, err := srv.Step()
			if injector != nil {
				injector.NextTick()
			}
			if err != nil {
				shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
				_ = httpSrv.Shutdown(shutdownCtx)
				cancel()
				return err
			}
		}
	}
}
