// Quickstart reproduces the paper's core story on two identical VMs
// (Sec. III / Table III): a per-VM power model says each fully busy VM
// draws 13 W, the wall meter says the pair draws only 20 W together, and
// the Shapley value resolves the conflict with a fair, efficient 10 W /
// 10 W split.
package main

import (
	"fmt"
	"log"
	"math/bits"

	"vmpower"
)

func main() {
	sys, err := vmpower.New(vmpower.Config{
		Machine: vmpower.Xeon16,
		VMs: []vmpower.VMSpec{
			{Name: "C_VM", Type: vmpower.Small},
			{Name: "C_VM'", Type: vmpower.Small},
		},
		Seed:       1,
		MeterNoise: -1, // noiseless, so the 13/7/10 story is crisp
	})
	if err != nil {
		log.Fatal(err)
	}

	// Offline phase: sweep VM combinations under a synthetic workload to
	// learn the v(S,C) table (the paper's Fig. 8 pipeline).
	fmt.Println("calibrating (offline v(S,C) collection)...")
	if err := sys.Calibrate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("idle power: %.1f W\n\n", sys.IdlePower())

	// Run the paper's floating-point job on both VMs and estimate.
	for _, name := range sys.VMNames() {
		if err := sys.RunWorkload(name, "floatpoint", 1); err != nil {
			log.Fatal(err)
		}
	}
	alloc, err := sys.Step()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("measured machine power: %.1f W (%.1f W above idle)\n",
		alloc.MeasuredPower(), alloc.DynamicPower())
	fmt.Println("per-VM Shapley allocation:")
	for name, watts := range alloc.Shares() {
		fmt.Printf("  %-6s %.2f W\n", name, watts)
	}

	// The same game, solved directly with the cooperative-game API: the
	// first busy VM adds 13 W, the second only 7 W (HTT contention), and
	// the Shapley value splits the 20 W fairly.
	phi, err := vmpower.ExactShapley(2, func(members uint32) float64 {
		switch bits.OnesCount32(members) {
		case 0:
			return 0
		case 1:
			return 13
		default:
			return 20
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanalytic check — Shapley of the (13, 7) game: %.1f W / %.1f W\n", phi[0], phi[1])
}
