// Fairness walks through the paper's Fig. 7 analysis with the
// cooperative-game API: when two VMs compete for shared hardware and lose
// power, resource-usage-proportional allocation spreads the loss over
// every VM — including bystanders — while the Shapley value charges only
// the competitors.
package main

import (
	"fmt"
	"log"

	"vmpower"
)

// scenario is a three-VM game with standalone powers p and pairwise
// competition declines.
type scenario struct {
	name     string
	p        [3]float64
	declines map[[2]int]float64
}

func (sc scenario) worth(members uint32) float64 {
	var total float64
	for i := 0; i < 3; i++ {
		if members&(1<<i) != 0 {
			total += sc.p[i]
		}
	}
	for pair, d := range sc.declines {
		if members&(1<<pair[0]) != 0 && members&(1<<pair[1]) != 0 {
			total -= d
		}
	}
	return total
}

func main() {
	scenarios := []scenario{
		{
			name:     "Fig. 7(a): VM2 and VM3 compete (1 W loss); VM1 is a bystander",
			p:        [3]float64{5, 4, 3},
			declines: map[[2]int]float64{{1, 2}: 1},
		},
		{
			name:     "Fig. 7(b): VM1–VM2 compete (1 W), VM2–VM3 compete (1.5 W)",
			p:        [3]float64{5, 4, 3},
			declines: map[[2]int]float64{{0, 1}: 1, {1, 2}: 1.5},
		},
	}
	for _, sc := range scenarios {
		fmt.Println(sc.name)
		measured := sc.worth(0b111)
		phi, err := vmpower.ExactShapley(3, sc.worth)
		if err != nil {
			log.Fatal(err)
		}
		var demand float64
		for _, p := range sc.p {
			demand += p
		}
		fmt.Printf("  standalone demand %.1f W, measured together %.1f W\n", demand, measured)
		fmt.Printf("  %-22s %8s %8s %8s\n", "", "VM1", "VM2", "VM3")
		fmt.Printf("  %-22s %8.3f %8.3f %8.3f\n", "Shapley", phi[0], phi[1], phi[2])
		usage := make([]float64, 3)
		for i := range usage {
			usage[i] = measured * sc.p[i] / demand
		}
		fmt.Printf("  %-22s %8.3f %8.3f %8.3f\n", "usage-proportional", usage[0], usage[1], usage[2])
		fmt.Printf("  VM1's decline: Shapley %.3f W vs usage-proportional %.3f W\n\n",
			sc.p[0]-phi[0], sc.p[0]-usage[0])
	}

	fmt.Println("Shapley charges competition losses to the VMs that cause them;")
	fmt.Println("proportional rescaling spreads them over everyone.")
}
