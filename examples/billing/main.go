// Billing reproduces the paper's Fig. 1 motivation as an end-to-end
// energy-billing pipeline: two tenants rent the same VM type over the
// same period, but tenant B's workload keeps the CPU busier. Type-based
// pricing bills them identically; Shapley-based power accounting reveals
// that B consumed ~33% more energy and prices accordingly.
package main

import (
	"fmt"
	"log"

	"vmpower"
)

const (
	pricePerKWh = 0.10409 // 2015 US retail, as in the paper's Table I
	hours       = 6       // simulated rental period (compressed: 1 tick = 1 s)
	ticks       = hours * 60
)

func main() {
	sys, err := vmpower.New(vmpower.Config{
		Machine: vmpower.Xeon16,
		VMs: []vmpower.VMSpec{
			{Name: "tenantA", Type: vmpower.Medium},
			{Name: "tenantB", Type: vmpower.Medium},
		},
		Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Calibrate(); err != nil {
		log.Fatal(err)
	}

	// Tenant A runs a mostly idle interactive service (wrf's oscillation
	// stands in for a diurnal load); tenant B runs sustained analytics.
	if err := sys.RunWorkload("tenantA", "wrf", 1); err != nil {
		log.Fatal(err)
	}
	if err := sys.RunWorkload("tenantB", "sjeng", 2); err != nil {
		log.Fatal(err)
	}

	energyWs := map[string]float64{} // watt-seconds per tenant
	if err := sys.Run(ticks, func(a *vmpower.Allocation) bool {
		for name, watts := range a.Shares() {
			energyWs[name] += watts // 1 s per tick
		}
		return true
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("rental period: %d simulated minutes, both tenants on identical %s instances\n\n", ticks/60, "Medium")
	fmt.Printf("%-10s %14s %14s\n", "tenant", "energy (kWh)", "energy bill")
	var kwh [2]float64
	for i, name := range sys.VMNames() {
		kwh[i] = energyWs[name] / 3.6e6
		fmt.Printf("%-10s %14.6f %13.6f$\n", name, kwh[i], kwh[i]*pricePerKWh)
	}
	fmt.Printf("\ntype-based pricing would bill both tenants identically;\n")
	fmt.Printf("tenant B actually consumed %.0f%% more energy than tenant A\n", (kwh[1]/kwh[0]-1)*100)
}
