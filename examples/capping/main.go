// Capping demonstrates the management application the paper's
// introduction motivates: once per-VM power is measurable, per-VM power
// caps become enforceable. An 8-vCPU analytics VM running flat out draws
// ~40 W; we cap it at 25 W mid-run and watch the control loop throttle
// its CPU ceiling until the Shapley-attributed power obeys the cap, while
// the co-located web VM is untouched.
package main

import (
	"fmt"
	"log"

	"vmpower"
)

func main() {
	sys, err := vmpower.New(vmpower.Config{
		Machine: vmpower.Xeon16,
		VMs: []vmpower.VMSpec{
			{Name: "web", Type: vmpower.Small},
			{Name: "analytics", Type: vmpower.XLarge},
		},
		Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Calibrate(); err != nil {
		log.Fatal(err)
	}
	if err := sys.RunWorkload("web", "gcc", 1); err != nil {
		log.Fatal(err)
	}
	if err := sys.RunWorkload("analytics", "namd", 2); err != nil {
		log.Fatal(err)
	}

	const (
		uncappedTicks = 10
		cappedTicks   = 25
		capWatts      = 25.0
	)
	fmt.Printf("%6s %12s %12s %8s\n", "tick", "web (W)", "analytics(W)", "note")
	show := func(a *vmpower.Allocation, note string) {
		fmt.Printf("%6d %12.2f %12.2f %8s\n", a.Tick(), a.Watts("web"), a.Watts("analytics"), note)
	}
	if err := sys.Run(uncappedTicks, func(a *vmpower.Allocation) bool {
		show(a, "")
		return true
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n>>> installing %g W cap on analytics <<<\n\n", capWatts)
	if err := sys.SetPowerCap("analytics", capWatts); err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(cappedTicks, func(a *vmpower.Allocation) bool {
		note := ""
		if a.Watts("analytics") > capWatts {
			note = "over"
		}
		show(a, note)
		return true
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nthe controller converges in a few ticks; the web VM's power is")
	fmt.Println("unaffected because only the capped VM's CPU ceiling is throttled.")
}
