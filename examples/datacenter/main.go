// Datacenter scales the accounting to a pool of hosts: ten VMs from three
// tenants are consolidated onto three 16-core machines, every machine is
// metered and disaggregated independently, and the Additivity axiom lets
// per-tenant datacenter power be the plain sum of per-host Shapley shares.
package main

import (
	"fmt"
	"log"
	"sort"

	"vmpower/internal/fleet"
)

func main() {
	reqs := []fleet.VMRequest{
		{Name: "web-1", Tenant: "acme", Type: 0, Workload: "gcc", WorkloadSeed: 1},
		{Name: "web-2", Tenant: "acme", Type: 0, Workload: "gcc", WorkloadSeed: 2},
		{Name: "api", Tenant: "acme", Type: 1, Workload: "omnetpp", WorkloadSeed: 3},
		{Name: "train-1", Tenant: "ml-corp", Type: 3, Workload: "namd", WorkloadSeed: 4},
		{Name: "train-2", Tenant: "ml-corp", Type: 3, Workload: "namd", WorkloadSeed: 5},
		{Name: "train-3", Tenant: "ml-corp", Type: 3, Workload: "namd", WorkloadSeed: 6},
		{Name: "etl", Tenant: "ml-corp", Type: 2, Workload: "wrf", WorkloadSeed: 7},
		{Name: "ci-1", Tenant: "devshop", Type: 1, Workload: "sjeng", WorkloadSeed: 8},
		{Name: "ci-2", Tenant: "devshop", Type: 1, Workload: "gobmk", WorkloadSeed: 9},
		{Name: "cache", Tenant: "devshop", Type: 0, Workload: "tonto", WorkloadSeed: 10},
	}
	f, err := fleet.New(fleet.Config{Hosts: 3, Seed: 21, MeterNoise: 0.25}, reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placed %d VMs on %d hosts:\n", len(reqs), f.Hosts())
	place := f.Placement()
	for _, r := range reqs {
		fmt.Printf("  %-8s (%-8s) → host %d\n", r.Name, r.Tenant, place[r.Name])
	}

	fmt.Println("\ncalibrating every host (offline v(S,C) collection)...")
	if err := f.Calibrate(); err != nil {
		log.Fatal(err)
	}

	const ticks = 60
	fmt.Printf("running %d estimation ticks...\n\n", ticks)
	var last *fleet.Tick
	if err := f.Run(ticks, func(tk *fleet.Tick) bool { last = tk; return true }); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("datacenter at tick %d: %.1f W measured (%.1f W above idle)\n\n",
		ticks, last.MeasuredTotal, last.DynamicTotal)
	tenants := make([]string, 0, len(last.PerTenant))
	for tn := range last.PerTenant {
		tenants = append(tenants, tn)
	}
	sort.Strings(tenants)
	fmt.Printf("%-10s %14s %16s\n", "tenant", "power now (W)", "energy (Wh)")
	energy := f.EnergyWhByTenant()
	for _, tn := range tenants {
		fmt.Printf("%-10s %14.2f %16.4f\n", tn, last.PerTenant[tn], energy[tn])
	}
	fmt.Println("\nper-host games are independent, so tenant power is the plain sum")
	fmt.Println("of per-host Shapley shares (the Additivity axiom at fleet scale).")
}
