// Realtime runs the paper's full Sec. VII-C pipeline on the 5-VM
// evaluation mix (2×VM1, VM2, VM3, VM4): offline calibration, then online
// 1 Hz estimation over a SPEC-like workload mix, streaming per-VM power
// and contrasting the Shapley aggregate (always equal to the measurement)
// with the naive sum of per-VM power models.
package main

import (
	"fmt"
	"log"

	"vmpower"
)

func main() {
	sys, err := vmpower.New(vmpower.Config{
		Machine: vmpower.Xeon16,
		VMs: []vmpower.VMSpec{
			{Name: "vm1a", Type: vmpower.Small},
			{Name: "vm1b", Type: vmpower.Small},
			{Name: "vm2", Type: vmpower.Medium},
			{Name: "vm3", Type: vmpower.Large},
			{Name: "vm4", Type: vmpower.XLarge},
		},
		Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("offline calibration (2^4 − 1 VHC combinations)...")
	if err := sys.Calibrate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("idle power: %.1f W\n\n", sys.IdlePower())

	// The evaluation's workload mix.
	bind := map[string]string{
		"vm1a": "gcc",
		"vm1b": "sjeng",
		"vm2":  "omnetpp",
		"vm3":  "wrf",
		"vm4":  "namd",
	}
	for name, bench := range bind {
		if err := sys.RunWorkload(name, bench, 42); err != nil {
			log.Fatal(err)
		}
	}

	names := sys.VMNames()
	fmt.Printf("%5s %9s %9s", "tick", "meter(W)", "dyn(W)")
	for _, n := range names {
		fmt.Printf(" %8s", n)
	}
	fmt.Println()

	const ticks = 30
	sums := make(map[string]float64, len(names))
	if err := sys.Run(ticks, func(a *vmpower.Allocation) bool {
		fmt.Printf("%5d %9.1f %9.1f", a.Tick(), a.MeasuredPower(), a.DynamicPower())
		for _, n := range names {
			w := a.Watts(n)
			sums[n] += w
			fmt.Printf(" %8.2f", w)
		}
		fmt.Println()
		return true
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nmean per-VM power over %d s:\n", ticks)
	for _, n := range names {
		fmt.Printf("  %-5s %-8s %6.2f W\n", n, bind[n], sums[n]/ticks)
	}
	fmt.Println("\nthe Shapley shares sum exactly to the metered dynamic power each")
	fmt.Println("second (Efficiency) — the property the per-VM power model baseline")
	fmt.Println("violates by ~56% on this mix (see cmd/experiments -run fig11).")
}
