package vmpower

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRecordAndReplayFacade(t *testing.T) {
	sys, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Calibrate(); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunWorkload("web", "gcc", 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunWorkload("db", "omnetpp", 2); err != nil {
		t.Fatal(err)
	}

	var trace bytes.Buffer
	if err := sys.StartRecording(&trace); err != nil {
		t.Fatal(err)
	}
	if err := sys.StartRecording(&trace); err == nil {
		t.Fatal("want already-recording error")
	}
	var livePower []map[string]float64
	const ticks = 6
	if err := sys.Run(ticks, func(a *Allocation) bool {
		livePower = append(livePower, a.Shares())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.StopRecording(); err != nil {
		t.Fatal(err)
	}
	if err := sys.StopRecording(); err != nil {
		t.Fatal(err) // idempotent
	}
	if trace.Len() == 0 {
		t.Fatal("empty trace")
	}
	if lines := strings.Count(trace.String(), "\n"); lines != ticks {
		t.Fatalf("trace has %d lines, want %d", lines, ticks)
	}

	// Replaying the trace reproduces the live allocations exactly.
	idx := 0
	if err := sys.Replay(bytes.NewReader(trace.Bytes()), func(a *Allocation) bool {
		for name, want := range livePower[idx] {
			if got := a.Watts(name); math.Abs(got-want) > 1e-9 {
				t.Fatalf("tick %d %s: replay %g vs live %g", idx, name, got, want)
			}
		}
		idx++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if idx != ticks {
		t.Fatalf("replayed %d ticks", idx)
	}
}

func TestSaveLoadCalibrationFacade(t *testing.T) {
	sys, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SaveCalibration(&bytes.Buffer{}); err == nil {
		t.Fatal("uncalibrated save must fail")
	}
	if err := sys.Calibrate(); err != nil {
		t.Fatal(err)
	}
	var model bytes.Buffer
	if err := sys.SaveCalibration(&model); err != nil {
		t.Fatal(err)
	}

	fresh, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadCalibration(bytes.NewReader(model.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !fresh.Calibrated() {
		t.Fatal("loaded system must be calibrated")
	}
	if err := fresh.RunWorkload("web", "floatpoint", 1); err != nil {
		t.Fatal(err)
	}
	if err := fresh.RunWorkload("worker", "floatpoint", 2); err != nil {
		t.Fatal(err)
	}
	alloc, err := fresh.Step()
	if err != nil {
		t.Fatal(err)
	}
	if got := alloc.Watts("web"); math.Abs(got-10) > 1.5 {
		t.Fatalf("reloaded system share = %g, want ~10", got)
	}
}

func TestReplayFacadeErrors(t *testing.T) {
	sys, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Calibrate(); err != nil {
		t.Fatal(err)
	}
	if err := sys.StartRecording(nil); err == nil {
		t.Fatal("want nil-writer error")
	}
	if err := sys.Replay(strings.NewReader("garbage\n"), nil); err == nil {
		t.Fatal("want corrupt-trace error")
	}
	// A trace with the wrong VM count fails.
	bad := `{"tick":1,"coalition":1,"states":[[1,0,0]],"power":150}` + "\n"
	if err := sys.Replay(strings.NewReader(bad), nil); err == nil {
		t.Fatal("want vm-count error")
	}
}
