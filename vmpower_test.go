package vmpower

import (
	"math"
	"math/bits"
	"strings"
	"testing"
)

func testConfig() Config {
	return Config{
		Machine: Xeon16,
		VMs: []VMSpec{
			{Name: "web", Type: Small},
			{Name: "worker", Type: Small},
			{Name: "db", Type: Medium},
		},
		Seed:             1,
		MeterNoise:       -1, // noiseless for crisp assertions
		CalibrationTicks: 120,
	}
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{},
		{VMs: []VMSpec{{Name: "", Type: Small}}},
		{VMs: []VMSpec{{Name: "a", Type: Small}, {Name: "a", Type: Small}}},
		{VMs: []VMSpec{{Name: "a", Type: VMType(9)}}},
		{Machine: MachineModel(5), VMs: []VMSpec{{Name: "a", Type: Small}}},
		{VMs: []VMSpec{{Name: "a", Type: Small}}, IdleAttribution: "bogus"},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Fatalf("config %d: want error", i)
		}
	}
}

func TestEndToEnd(t *testing.T) {
	sys, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sys.Calibrated() {
		t.Fatal("must start uncalibrated")
	}
	if _, err := sys.Step(); err == nil {
		t.Fatal("Step before Calibrate must fail")
	}
	if err := sys.Calibrate(); err != nil {
		t.Fatal(err)
	}
	if !sys.Calibrated() {
		t.Fatal("Calibrated must be true")
	}
	if math.Abs(sys.IdlePower()-138) > 0.5 {
		t.Fatalf("IdlePower = %g, want ~138", sys.IdlePower())
	}

	if err := sys.RunWorkload("web", "floatpoint", 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunWorkload("worker", "floatpoint", 2); err != nil {
		t.Fatal(err)
	}
	alloc, err := sys.Step()
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Method() != "exact" {
		t.Fatalf("Method = %q", alloc.Method())
	}
	// Two identical fully-busy Smalls: the Table III result — each gets
	// ~10 W of the 20 W pair, and the stopped db gets 0.
	web, worker := alloc.Watts("web"), alloc.Watts("worker")
	if math.Abs(web-worker) > 1e-9 {
		t.Fatalf("symmetric shares differ: %g vs %g", web, worker)
	}
	if web < 9 || web > 11 {
		t.Fatalf("share = %g, want ~10", web)
	}
	if alloc.Watts("db") != 0 {
		t.Fatalf("stopped VM share = %g", alloc.Watts("db"))
	}
	if alloc.Watts("nope") != 0 {
		t.Fatal("unknown VM must report 0")
	}
	// Efficiency against the meter.
	var sum float64
	for _, w := range alloc.Shares() {
		sum += w
	}
	if math.Abs(sum-alloc.DynamicPower()) > 1e-9 {
		t.Fatalf("Σ shares %g vs dynamic %g", sum, alloc.DynamicPower())
	}
	if alloc.MeasuredPower() <= alloc.DynamicPower() {
		t.Fatal("measured power includes idle")
	}
	if alloc.Tick() <= 0 {
		t.Fatalf("Tick = %d", alloc.Tick())
	}
}

func TestStopAndLifecycle(t *testing.T) {
	sys, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Calibrate(); err != nil {
		t.Fatal(err)
	}
	sys.StartAll()
	if err := sys.Stop("db"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Stop("ghost"); err == nil {
		t.Fatal("want unknown-VM error")
	}
	if err := sys.RunWorkload("ghost", "gcc", 1); err == nil {
		t.Fatal("want unknown-VM error")
	}
	if err := sys.RunWorkload("web", "ghostbench", 1); err == nil {
		t.Fatal("want unknown-benchmark error")
	}
	sys.StopAll()
	alloc, err := sys.Step()
	if err != nil {
		t.Fatal(err)
	}
	if alloc.DynamicPower() != 0 {
		t.Fatalf("all-stopped dynamic power = %g", alloc.DynamicPower())
	}
}

func TestRunCallback(t *testing.T) {
	sys, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Calibrate(); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunWorkload("web", "gcc", 3); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := sys.Run(4, func(a *Allocation) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("Run delivered %d", n)
	}
	n = 0
	if err := sys.Run(4, func(a *Allocation) bool { n++; return false }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("early stop delivered %d", n)
	}
}

func TestVMNamesAndWorkloads(t *testing.T) {
	sys, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	names := sys.VMNames()
	if len(names) != 3 || names[0] != "web" {
		t.Fatalf("VMNames = %v", names)
	}
	names[0] = "mutated"
	if sys.VMNames()[0] != "web" {
		t.Fatal("VMNames must copy")
	}
	found := false
	for _, w := range Workloads() {
		if w == "gcc" {
			found = true
		}
	}
	if !found {
		t.Fatal("Workloads must list gcc")
	}
}

func TestRunWorkloadTrace(t *testing.T) {
	sys, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Calibrate(); err != nil {
		t.Fatal(err)
	}
	csvData := "cpu\n1.0\n1.0\n0.0\n"
	if err := sys.RunWorkloadTrace("web", "prod", strings.NewReader(csvData), false); err != nil {
		t.Fatal(err)
	}
	// Tick 1 of the trace: full CPU → ~13 W.
	alloc, err := sys.Step()
	if err != nil {
		t.Fatal(err)
	}
	if got := alloc.Watts("web"); math.Abs(got-13) > 1.5 {
		t.Fatalf("trace tick power = %g, want ~13", got)
	}
	// Past the end the last (idle) sample holds.
	if _, err := sys.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Step(); err != nil {
		t.Fatal(err)
	}
	alloc, err = sys.Step()
	if err != nil {
		t.Fatal(err)
	}
	if got := alloc.Watts("web"); got > 1 {
		t.Fatalf("held idle sample power = %g", got)
	}
	if err := sys.RunWorkloadTrace("ghost", "x", strings.NewReader(csvData), false); err == nil {
		t.Fatal("want unknown-VM error")
	}
	if err := sys.RunWorkloadTrace("web", "x", strings.NewReader("bogus\nrows\n"), false); err == nil {
		t.Fatal("want parse error")
	}
}

func TestExactShapleyFacade(t *testing.T) {
	worth := func(members uint32) float64 {
		switch bits.OnesCount32(members) {
		case 0:
			return 0
		case 1:
			return 13
		default:
			return 20
		}
	}
	phi, err := ExactShapley(2, worth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(phi[0]-10) > 1e-12 || math.Abs(phi[1]-10) > 1e-12 {
		t.Fatalf("ExactShapley = %v", phi)
	}
	if _, err := ExactShapley(2, nil); err == nil {
		t.Fatal("want nil-worth error")
	}
}

func TestMonteCarloShapleyFacade(t *testing.T) {
	worth := func(members uint32) float64 { return float64(bits.OnesCount32(members)) * 3 }
	phi, stderr, err := MonteCarloShapley(6, worth, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(phi) != 6 || len(stderr) != 6 {
		t.Fatalf("lengths = %d, %d", len(phi), len(stderr))
	}
	for i, p := range phi {
		if math.Abs(p-3) > 1e-9 {
			t.Fatalf("phi[%d] = %g, want 3", i, p)
		}
	}
	if _, _, err := MonteCarloShapley(6, nil, 100, 1); err == nil {
		t.Fatal("want nil-worth error")
	}
}

func TestPowerCapFacade(t *testing.T) {
	cfg := Config{
		Machine: Xeon16,
		VMs: []VMSpec{
			{Name: "web", Type: Small},
			{Name: "big", Type: XLarge},
		},
		Seed:             2,
		MeterNoise:       -1,
		CalibrationTicks: 120,
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Calibrate(); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunWorkload("web", "gcc", 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunWorkload("big", "namd", 2); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetPowerCap("ghost", 10); err == nil {
		t.Fatal("want unknown-VM error")
	}
	const capW = 25.0
	if err := sys.SetPowerCap("big", capW); err != nil {
		t.Fatal(err)
	}
	// Settle, then check compliance.
	if err := sys.Run(10, nil); err != nil {
		t.Fatal(err)
	}
	over := 0
	if err := sys.Run(20, func(a *Allocation) bool {
		if a.Watts("big") > capW*1.05 {
			over++
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if over > 3 {
		t.Fatalf("capped VM above cap for %d/20 settled ticks", over)
	}
	// Removing the cap restores full power.
	if err := sys.RemovePowerCap("big"); err != nil {
		t.Fatal(err)
	}
	var last float64
	if err := sys.Run(5, func(a *Allocation) bool { last = a.Watts("big"); return true }); err != nil {
		t.Fatal(err)
	}
	if last < capW {
		t.Fatalf("power after cap removal = %g, want > %g", last, capW)
	}
	// RemovePowerCap with no controller is a no-op.
	sys2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys2.RemovePowerCap("big"); err != nil {
		t.Fatal(err)
	}
}

func TestIdleAttributionFacade(t *testing.T) {
	cfg := testConfig()
	cfg.IdleAttribution = "equal"
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Calibrate(); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunWorkload("web", "floatpoint", 1); err != nil {
		t.Fatal(err)
	}
	alloc, err := sys.Step()
	if err != nil {
		t.Fatal(err)
	}
	// The single running VM carries the entire idle power.
	if got := alloc.Watts("web"); math.Abs(got-(alloc.MeasuredPower())) > 1e-9 {
		t.Fatalf("web total = %g, measured %g", got, alloc.MeasuredPower())
	}
}
