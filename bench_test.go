package vmpower

// The benchmark harness: one Benchmark per paper table/figure (each runs
// the corresponding experiment end-to-end in Quick mode and reports the
// headline metric via b.ReportMetric), plus micro-benchmarks of the hot
// paths (exact/Monte-Carlo Shapley, the machine power model, the VHC
// estimate, the serial frame codec).
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem

import (
	"bytes"
	"fmt"
	"testing"

	"vmpower/internal/core"
	"vmpower/internal/experiments"
	"vmpower/internal/hypervisor"
	"vmpower/internal/machine"
	"vmpower/internal/meter"
	"vmpower/internal/meter/serial"
	"vmpower/internal/obs"
	"vmpower/internal/shapley"
	"vmpower/internal/vhc"
	"vmpower/internal/vm"
	"vmpower/internal/workload"
)

// benchExperiment runs a registered experiment per iteration and reports
// the named metrics.
func benchExperiment(b *testing.B, id string, metrics ...string) {
	b.Helper()
	d, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.Config{Seed: 1, Quick: true}
	var res *experiments.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = d.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, m := range metrics {
		if v, ok := res.Values[m]; ok {
			b.ReportMetric(v, m)
		}
	}
}

// ---- one benchmark per paper artifact (DESIGN.md §4) ----

func BenchmarkTable1(b *testing.B) {
	benchExperiment(b, "table1", "general_purpose_usa")
}

func BenchmarkFig1(b *testing.B) {
	benchExperiment(b, "fig1", "extra_energy_pct")
}

func BenchmarkFig3(b *testing.B) {
	benchExperiment(b, "fig3", "mean_rel_err")
}

func BenchmarkFig4(b *testing.B) {
	benchExperiment(b, "fig4", "xeon16_model_error", "pentium_model_error")
}

func BenchmarkFig5(b *testing.B) {
	benchExperiment(b, "fig5", "sibling_marginal")
}

func BenchmarkTable3(b *testing.B) {
	benchExperiment(b, "table3", "shapley_first")
}

func BenchmarkFig7(b *testing.B) {
	benchExperiment(b, "fig7", "scenario_a_vm1_decline_usage")
}

func BenchmarkTable4(b *testing.B) {
	benchExperiment(b, "table4", "sublinearity")
}

func BenchmarkTable5(b *testing.B) {
	benchExperiment(b, "table5", "mean_cpu_sjeng")
}

func BenchmarkFig10(b *testing.B) {
	benchExperiment(b, "fig10", "overall_frac_below_5pct", "overall_max")
}

func BenchmarkFig11(b *testing.B) {
	benchExperiment(b, "fig11", "model_mean_rel_err", "shapley_mean_rel_err")
}

func BenchmarkFig12(b *testing.B) {
	benchExperiment(b, "fig12", "measured")
}

func BenchmarkHeadline(b *testing.B) {
	benchExperiment(b, "headline", "frac_below_5pct", "mean_rel_err")
}

func BenchmarkMonteCarloAblation(b *testing.B) {
	benchExperiment(b, "mc", "max_err_128")
}

func BenchmarkCapping(b *testing.B) {
	benchExperiment(b, "capping", "capped_power", "breach_fraction")
}

func BenchmarkAdditivity(b *testing.B) {
	benchExperiment(b, "additivity", "additivity_deviation")
}

func BenchmarkArbitrary(b *testing.B) {
	benchExperiment(b, "arbitrary", "mean_err_k2", "mean_err_k4")
}

func BenchmarkAxioms(b *testing.B) {
	benchExperiment(b, "axioms", "symmetry_gap_max")
}

func BenchmarkFleet(b *testing.B) {
	benchExperiment(b, "fleet", "max_efficiency_gap")
}

func BenchmarkInteraction(b *testing.B) {
	benchExperiment(b, "interaction", "vm1_pair")
}

// BenchmarkInteractionIndex measures the O(2^n·n²) pairwise index alone.
func BenchmarkInteractionIndex(b *testing.B) {
	for _, n := range []int{8, 12, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			worth := func(s vm.Coalition) float64 {
				size := float64(s.Size())
				return 13*size - 0.4*size*size
			}
			table, err := shapley.Tabulate(n, worth)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := shapley.InteractionIndex(n, table); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- micro-benchmarks of the hot paths ----

// BenchmarkExactShapley measures the 2^n enumeration at the paper's
// practical sizes.
func BenchmarkExactShapley(b *testing.B) {
	for _, n := range []int{5, 10, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			worth := func(s vm.Coalition) float64 {
				size := float64(s.Size())
				return 13*size - 0.4*size*size
			}
			table, err := shapley.Tabulate(n, worth)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := shapley.ExactFromTable(n, table); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExactParallel contrasts the serial 2^n engine with the
// sharded parallel engine at the paper's practical bound n = 16. The
// parallel result is bit-for-bit identical at any worker count; on a
// multi-core runner the parallelism=0 ("all cores") variant is the
// headline speedup.
func BenchmarkExactParallel(b *testing.B) {
	const n = 16
	worth := func(s vm.Coalition) float64 {
		size := float64(s.Size())
		return 13*size - 0.4*size*size
	}
	table, err := shapley.Tabulate(n, worth)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := shapley.ExactFromTable(n, table); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, p := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("parallel=%d", p)
		if p == 0 {
			name = "parallel=all"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := shapley.ExactFromTableParallel(n, table, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// End-to-end including the 2^n tabulation (the dominant cost when
	// the worth function is the VHC approximation rather than a table
	// lookup).
	b.Run("tabulate+accumulate/all", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := shapley.ExactParallel(n, worth, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMonteCarloParallel contrasts serial and parallel permutation
// sampling at n = 24 with the worth cache on (the production
// configuration) — the estimate is identical at every worker count.
func BenchmarkMonteCarloParallel(b *testing.B) {
	const n = 24
	worth := func(s vm.Coalition) float64 {
		size := float64(s.Size())
		return 13*size - 0.3*size*size
	}
	for _, p := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("parallel=%d", p)
		if p == 0 {
			name = "parallel=all"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := shapley.MonteCarlo(n, worth, shapley.MCOptions{
					Permutations: 256, Seed: 7, Parallelism: p,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMonteCarloShapley measures permutation sampling at n = 24
// (beyond the exact method's practical range).
func BenchmarkMonteCarloShapley(b *testing.B) {
	const n = 24
	worth := func(s vm.Coalition) float64 {
		size := float64(s.Size())
		return 13*size - 0.3*size*size
	}
	for _, perms := range []int{64, 256} {
		b.Run(fmt.Sprintf("perms=%d", perms), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := shapley.MonteCarlo(n, worth, shapley.MCOptions{Permutations: perms, Seed: int64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMachinePower measures the ground-truth power function on the
// 5-VM evaluation mix.
func BenchmarkMachinePower(b *testing.B) {
	mach, err := machine.New(machine.XeonProfile(), machine.Pack)
	if err != nil {
		b.Fatal(err)
	}
	loads := []machine.Load{
		{VCPUs: 1, MemoryGB: 2, DiskGB: 20, State: vm.State{vm.CPU: 0.9}},
		{VCPUs: 1, MemoryGB: 2, DiskGB: 20, State: vm.State{vm.CPU: 0.8}},
		{VCPUs: 2, MemoryGB: 4, DiskGB: 40, State: vm.State{vm.CPU: 0.7}},
		{VCPUs: 4, MemoryGB: 8, DiskGB: 80, State: vm.State{vm.CPU: 0.95}},
		{VCPUs: 8, MemoryGB: 14, DiskGB: 100, State: vm.State{vm.CPU: 0.85}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mach.DynamicPower(loads); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVHCEstimate measures one v(S,C) approximation lookup+dot.
func BenchmarkVHCEstimate(b *testing.B) {
	approx, err := vhc.New(4, vhc.Options{Resolution: 0.01})
	if err != nil {
		b.Fatal(err)
	}
	const combo = vhc.ComboMask(0b1111)
	k := int(vm.NumComponents)
	gen := workload.Synthetic{Seed: 5}
	for i := 0; i < 300; i++ {
		features := make([]float64, 4*k)
		var power float64
		for j := 0; j < 4; j++ {
			s := gen.StateAt(i*4 + j)
			copy(features[j*k:], s[:])
			power += 13 * s[vm.CPU]
		}
		if err := approx.AddSample(combo, features, power); err != nil {
			b.Fatal(err)
		}
	}
	if err := approx.Train(); err != nil {
		b.Fatal(err)
	}
	query := make([]float64, 4*k)
	for j := range query {
		query[j] = 0.42
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := approx.Estimate(combo, query); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerialCodec measures meter frame encode+decode round-trips.
func BenchmarkSerialCodec(b *testing.B) {
	s := meter.Sample{Seq: 123456, Power: 151.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := serial.Encode(s)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := serial.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOnlineEstimationTick measures one full online estimation tick
// on the calibrated 5-VM system — the paper's 1 Hz real-time budget.
func BenchmarkOnlineEstimationTick(b *testing.B) {
	sys, err := New(Config{
		Machine: Xeon16,
		VMs: []VMSpec{
			{Name: "vm1a", Type: Small}, {Name: "vm1b", Type: Small},
			{Name: "vm2", Type: Medium}, {Name: "vm3", Type: Large},
			{Name: "vm4", Type: XLarge},
		},
		Seed:             1,
		CalibrationTicks: 60,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Calibrate(); err != nil {
		b.Fatal(err)
	}
	suite := []string{"gcc", "sjeng", "omnetpp", "wrf", "namd"}
	for i, name := range sys.VMNames() {
		if err := sys.RunWorkload(name, suite[i], int64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateTick measures one exact estimation tick on a
// calibrated host at the practical sizes n = 8 and n = 16, in the two
// regimes that bracket the compiled plan's incremental tabulation:
// steady (constant workloads — after the first tick every coalition is
// reused verbatim) and all-dirty (every VM's state changes every tick —
// the whole 2^n table is re-evaluated). plan=false forces the legacy
// path via DisableWorthPlan for before/after comparison; allocs/op is
// the headline metric for the compiled plan.
func BenchmarkEstimateTick(b *testing.B) {
	run := func(b *testing.B, n int, steady, plan, audited bool) {
		mach, err := machine.New(machine.XeonProfile(), machine.Pack)
		if err != nil {
			b.Fatal(err)
		}
		vms := make([]vm.VM, n)
		for i := range vms {
			vms[i] = vm.VM{Name: fmt.Sprintf("vm%02d", i), Type: 0}
		}
		set, err := vm.NewSet(vm.PaperCatalog(), vms)
		if err != nil {
			b.Fatal(err)
		}
		host, err := hypervisor.NewHost(mach, set)
		if err != nil {
			b.Fatal(err)
		}
		m, err := meter.Perfect(host.PowerSource())
		if err != nil {
			b.Fatal(err)
		}
		est, err := core.New(host, m, core.Config{
			Seed:                 1,
			OfflineTicksPerCombo: 40,
			IdleMeasureTicks:     3,
			DisableWorthPlan:     !plan,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := est.CollectOffline(); err != nil {
			b.Fatal(err)
		}
		for i := range vms {
			var g workload.Generator
			if steady {
				g = workload.Constant("steady", vm.State{
					vm.CPU:    float64(i%5) / 5,
					vm.Memory: float64(i%3) / 10,
					vm.DiskIO: float64(i%2) / 10,
				})
			} else {
				g = workload.Synthetic{Seed: int64(i + 1)}
			}
			if err := host.Attach(vm.ID(i), g); err != nil {
				b.Fatal(err)
			}
		}
		host.SetCoalition(vm.GrandCoalition(n))
		// audited mirrors a daemon tick with the full provenance layer on:
		// the invariant auditor runs its in-line checks and the flight
		// recorder captures the tick, neither of which may add allocs/op
		// over the bare pipeline.
		var flight *obs.FlightRecorder
		var scratch obs.FlightRecord
		if audited {
			est.SetAuditor(core.NewAuditor(core.AuditConfig{}, nil))
			flight = obs.NewFlightRecorder(0, n, int(vm.NumComponents))
		}
		record := func(alloc *core.Allocation) {
			if flight == nil {
				return
			}
			scratch.Tick = alloc.Tick
			scratch.MeasuredWatts = alloc.MeasuredPower
			scratch.DynamicWatts = alloc.DynamicPower
			scratch.Tier = alloc.Prov.Tier
			scratch.TierReason = alloc.Prov.TierReason
			scratch.DirtyVMs = alloc.Prov.DirtyVMs
			scratch.Evaluated = alloc.Prov.Evaluated
			scratch.Reused = alloc.Prov.Reused
			scratch.EfficiencyResidualWatts = alloc.Prov.EfficiencyResidualWatts
			scratch.PerVMWatts = append(scratch.PerVMWatts[:0], alloc.PerVM...)
			flight.Record(&scratch)
		}
		host.Advance(1)
		alloc, err := est.EstimateTick() // warm-up: first tick tabulates in full
		if err != nil {
			b.Fatal(err)
		}
		record(alloc)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			host.Advance(1)
			alloc, err := est.EstimateTick()
			if err != nil {
				b.Fatal(err)
			}
			record(alloc)
		}
	}
	for _, n := range []int{8, 16} {
		for _, regime := range []string{"steady", "alldirty"} {
			for _, plan := range []bool{true, false} {
				b.Run(fmt.Sprintf("n=%d/%s/plan=%v", n, regime, plan), func(b *testing.B) {
					run(b, n, regime == "steady", plan, false)
				})
			}
		}
		// The provenance arm: auditor + flight recorder on the plan path.
		b.Run(fmt.Sprintf("n=%d/steady/plan=true/audited", n), func(b *testing.B) {
			run(b, n, true, true, true)
		})
	}

	// Symmetry-collapsed arms: n VMs in r symmetry classes on the dense
	// 256-thread profile — sizes where 2^n coalition masks cannot exist.
	// Members of a class share one workload generator, so their quantized
	// states stay bit-equal and the tick solves over ∏(c_j+1) type-count
	// vectors. steady reuses the previous tick's collapsed table; alldirty
	// re-evaluates it in full every tick.
	symCounts := func(n, r int) []int {
		// Skewed class sizes: one dominant class plus small satellites,
		// the shape real fleets collapse into (many identical smalls, a
		// few bespoke VMs).
		switch r {
		case 3:
			return []int{n - 4, 2, 2}
		case 6:
			return []int{n - 10, 3, 3, 2, 1, 1}
		default:
			b.Fatalf("no class split for r=%d", r)
			return nil
		}
	}
	runSym := func(b *testing.B, n, r int, steady bool) {
		counts := symCounts(n, r)
		mach, err := machine.New(machine.DenseProfile(), machine.Pack)
		if err != nil {
			b.Fatal(err)
		}
		vms := make([]vm.VM, n)
		for i := range vms {
			vms[i] = vm.VM{Name: fmt.Sprintf("vm%03d", i), Type: 0}
		}
		set, err := vm.NewSet(vm.PaperCatalog(), vms)
		if err != nil {
			b.Fatal(err)
		}
		host, err := hypervisor.NewHost(mach, set)
		if err != nil {
			b.Fatal(err)
		}
		m, err := meter.Perfect(host.PowerSource())
		if err != nil {
			b.Fatal(err)
		}
		est, err := core.New(host, m, core.Config{
			Seed:                 1,
			OfflineTicksPerCombo: 20,
			IdleMeasureTicks:     2,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := est.CollectOffline(); err != nil {
			b.Fatal(err)
		}
		// One generator per class, shared by its members (ID-contiguous).
		gens := make([]workload.Generator, r)
		for j := range gens {
			if steady {
				gens[j] = workload.Constant("steady", vm.State{
					vm.CPU:    0.2 + 0.1*float64(j),
					vm.Memory: 0.05 * float64(j+1),
					vm.DiskIO: 0.02 * float64(j),
				})
			} else {
				gens[j] = workload.Synthetic{Seed: int64(j + 1)}
			}
		}
		id := 0
		for j, c := range counts {
			for i := 0; i < c; i++ {
				if err := host.Attach(vm.ID(id), gens[j]); err != nil {
					b.Fatal(err)
				}
				id++
			}
		}
		running := make([]bool, n)
		for i := range running {
			running[i] = true
		}
		if err := host.SetRunning(running); err != nil {
			b.Fatal(err)
		}
		host.Advance(1)
		alloc, err := est.EstimateTick() // warm-up: first tick tabulates in full
		if err != nil {
			b.Fatal(err)
		}
		if alloc.SymmetryClasses == 0 {
			b.Fatal("tick did not take the symmetry-collapsed path")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			host.Advance(1)
			if _, err := est.EstimateTick(); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, n := range []int{64, 200} {
		for _, r := range []int{3, 6} {
			for _, regime := range []string{"steady", "alldirty"} {
				b.Run(fmt.Sprintf("sym/n=%d/r=%d/%s", n, r, regime), func(b *testing.B) {
					runSym(b, n, r, regime == "steady")
				})
			}
		}
	}
}

// BenchmarkCalibration measures the full offline collection phase for the
// 2-type quickstart deployment.
func BenchmarkCalibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := New(Config{
			Machine: Xeon16,
			VMs: []VMSpec{
				{Name: "a", Type: Small}, {Name: "b", Type: Medium},
			},
			Seed:             int64(i),
			CalibrationTicks: 60,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.Calibrate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAntitheticMC contrasts plain and antithetic sampling cost.
func BenchmarkAntitheticMC(b *testing.B) {
	const n = 16
	worth := func(s vm.Coalition) float64 {
		size := float64(s.Size())
		return 13*size - 0.5*size*size
	}
	for _, anti := range []bool{false, true} {
		name := "plain"
		if anti {
			name = "antithetic"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := shapley.MonteCarlo(n, worth, shapley.MCOptions{
					Permutations: 128, Antithetic: anti, Seed: int64(i),
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReplayTick measures offline re-estimation throughput.
func BenchmarkReplayTick(b *testing.B) {
	sys, err := New(Config{
		Machine:          Xeon16,
		VMs:              []VMSpec{{Name: "a", Type: Small}, {Name: "b", Type: Medium}},
		Seed:             1,
		MeterNoise:       -1,
		CalibrationTicks: 60,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Calibrate(); err != nil {
		b.Fatal(err)
	}
	if err := sys.RunWorkload("a", "gcc", 1); err != nil {
		b.Fatal(err)
	}
	if err := sys.RunWorkload("b", "omnetpp", 2); err != nil {
		b.Fatal(err)
	}
	var trace bytes.Buffer
	if err := sys.StartRecording(&trace); err != nil {
		b.Fatal(err)
	}
	if err := sys.Run(64, nil); err != nil {
		b.Fatal(err)
	}
	if err := sys.StopRecording(); err != nil {
		b.Fatal(err)
	}
	raw := trace.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Replay(bytes.NewReader(raw), nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(64, "ticks/op")
}

// BenchmarkWorkloadGen measures state generation across the suite.
func BenchmarkWorkloadGen(b *testing.B) {
	gens := workload.SPECSuite(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range gens {
			_ = g.StateAt(i)
		}
	}
}
