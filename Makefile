# Development targets for the vmpower reproduction.

GO ?= go
# Benchtime for the bench-json snapshot; 1x keeps `make verify` fast.
BENCHTIME ?= 1x

.PHONY: all build test race bench bench-json verify experiments csv cover fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Snapshot benchmark numbers (name, ns/op, allocs/op) into a dated JSON
# file for cross-commit comparison.
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) ./... | $(GO) run ./cmd/benchjson -out BENCH_$$(date +%Y-%m-%d).json

# Full-size reproduction of every paper table/figure.
experiments:
	$(GO) run ./cmd/experiments -run all

# Full verification: vet + race across the tree, a benchmark snapshot,
# and every calibration band from DESIGN.md §5 (exits non-zero on drift).
verify: race bench-json
	$(GO) run ./cmd/experiments -verify

# Regenerate the figure CSVs under results/.
csv:
	$(GO) run ./cmd/experiments -run all -csv results

cover:
	$(GO) test -cover ./...

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	rm -rf results test_output.txt bench_output.txt BENCH_*.json
