# Development targets for the vmpower reproduction.

GO ?= go
# Benchtime for the bench-json snapshot; 1x keeps `make verify` fast.
BENCHTIME ?= 1x

.PHONY: all build test race bench bench-json verify experiments csv cover fmt vet clean fuzz-short golden fleetd-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The -race pass includes the chaos acceptance harnesses
# (internal/powerd and internal/fleetd), which hammer the daemons with
# concurrent scrapers while the meters fault.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Snapshot benchmark numbers (name, ns/op, allocs/op) into a dated JSON
# file for cross-commit comparison.
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) ./... | $(GO) run ./cmd/benchjson -out BENCH_$$(date +%Y-%m-%d).json

# Full-size reproduction of every paper table/figure.
experiments:
	$(GO) run ./cmd/experiments -run all

# Full verification: vet + race across the tree, a benchmark snapshot,
# and every calibration band from DESIGN.md §5 (exits non-zero on drift).
verify: race bench-json
	$(GO) run ./cmd/experiments -verify

# Regenerate the figure CSVs under results/.
csv:
	$(GO) run ./cmd/experiments -run all -csv results

cover:
	$(GO) test -cover ./...

# A short pass over every fuzz target — enough to catch regressions in the
# frame decoder, stream resync, model loader, workload CSV parser and the
# history query endpoint without tying up CI.
FUZZTIME ?= 10s
fuzz-short:
	$(GO) test -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME) ./internal/meter/serial/
	$(GO) test -run '^$$' -fuzz '^FuzzReaderResync$$' -fuzztime $(FUZZTIME) ./internal/meter/serial/
	$(GO) test -run '^$$' -fuzz '^FuzzLoadModel$$' -fuzztime $(FUZZTIME) ./internal/core/
	$(GO) test -run '^$$' -fuzz '^FuzzHistoryQuery$$' -fuzztime $(FUZZTIME) ./internal/powerd/
	$(GO) test -run '^$$' -fuzz '^FuzzTraceFromCSV$$' -fuzztime $(FUZZTIME) ./internal/workload/
	$(GO) test -run '^$$' -fuzz '^FuzzGeneratorTicks$$' -fuzztime $(FUZZTIME) ./internal/workload/

# End-to-end fleetd smoke: calibrate a 3-host pool, serve on an ephemeral
# port, run 10 ticks, self-scrape /healthz and /metrics, exit non-zero on
# any missing surface.
fleetd-smoke:
	$(GO) run ./cmd/fleetd -smoke -calibration-ticks 20 -log-level warn

# Re-pin the golden experiment outputs after an intentional change to the
# simulation, calibration or solvers.
golden:
	$(GO) test ./internal/experiments/ -run TestGoldenExperimentOutputs -update

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

# Golden pins under results/golden/ are tracked in git and survive clean;
# everything else under results/ is regenerable via `make csv`.
clean:
	rm -f results/*.csv test_output.txt bench_output.txt BENCH_*.json
