# Development targets for the vmpower reproduction.

GO ?= go

.PHONY: all build test race bench verify experiments csv cover fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Full-size reproduction of every paper table/figure.
experiments:
	$(GO) run ./cmd/experiments -run all

# Check every calibration band from DESIGN.md §5 (exits non-zero on drift).
verify:
	$(GO) run ./cmd/experiments -verify

# Regenerate the figure CSVs under results/.
csv:
	$(GO) run ./cmd/experiments -run all -csv results

cover:
	$(GO) test -cover ./...

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	rm -rf results test_output.txt bench_output.txt
