# Development targets for the vmpower reproduction.

GO ?= go
# Benchtime for the bench-json snapshot; 1x keeps `make verify` fast.
BENCHTIME ?= 1x

# ---- Benchmark trajectory + gate knobs -------------------------------
# The committed trajectory snapshot that bench-gate enforces against.
# Blessing an intentional perf regression = re-run `make bench-json`
# (overwrites this file), review the diff, and commit it with the
# justification. To start a new dated snapshot instead, pass
# BENCH_BASELINE=BENCH_<date>.json and update this default.
BENCH_BASELINE ?= BENCH_2026-08-08.json
# Relative ns/op tolerance for headline benches. 15% absorbs run-to-run
# jitter at -benchtime $(GATE_BENCHTIME) while still catching real
# regressions; BenchmarkServeLive wall-clock arms get a looser 60%
# inside benchgate (short-run p99s of a live daemon are noisy), and
# sub-microsecond benches are protected by benchgate's -min-ns-delta.
GATE_TOLERANCE ?= 0.15
# Longer benchtime for gate measurements than for the 1x snapshot pass:
# the gate compares numbers, so they need to be stable.
GATE_BENCHTIME ?= 3x
# Benches the gate re-measures (the headline set in cmd/benchgate).
GATE_BENCH_RE ?= EstimateTick|ExactParallel|ServeCached

.PHONY: all build test race bench bench-json bench-gate powerbench-smoke verify experiments csv cover fmt vet clean fuzz-short golden fleetd-smoke lifecycle-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The -race pass includes the chaos acceptance harnesses
# (internal/powerd and internal/fleetd), which hammer the daemons with
# concurrent scrapers while the meters fault.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Snapshot benchmark numbers (name, ns/op, allocs/op) into the committed
# trajectory JSON for cross-commit comparison. Includes the powerbench
# live-serve arms (BenchmarkServeLive/...) so the serving-path p99s are
# part of the trajectory. Overwrites $(BENCH_BASELINE): re-running this
# target IS the bless step for an intentional perf change.
bench-json:
	{ $(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) ./... ; \
	  $(GO) run ./cmd/powerbench -gobench -clients 4 -duration 2s -interval 50ms -warmup 10 ; } \
	  | $(GO) run ./cmd/benchjson -out $(BENCH_BASELINE)

# Enforce the trajectory: re-measure the headline benches and fail on a
# >$(GATE_TOLERANCE) regression vs $(BENCH_BASELINE). The fresh snapshot
# is written to bench_fresh_gate.json (gitignored by clean) so a failing
# run can be inspected.
bench-gate:
	{ $(GO) test -run '^$$' -bench '$(GATE_BENCH_RE)' -benchmem -benchtime $(GATE_BENCHTIME) ./... ; \
	  $(GO) run ./cmd/powerbench -gobench -clients 4 -duration 2s -interval 50ms -warmup 10 ; } \
	  | $(GO) run ./cmd/benchjson -out bench_fresh_gate.json
	$(GO) run ./cmd/benchgate -baseline $(BENCH_BASELINE) -fresh bench_fresh_gate.json -tolerance $(GATE_TOLERANCE)

# Quick self-hosted load test of the powerd serving path: boots a
# calibrated daemon, hammers the cached endpoints, reports p50/p99/qps
# per endpoint plus how many ticks the load disturbed.
powerbench-smoke:
	$(GO) run ./cmd/powerbench -clients 4 -duration 2s -interval 50ms -warmup 10

# Full-size reproduction of every paper table/figure.
experiments:
	$(GO) run ./cmd/experiments -run all

# Full verification: vet + race across the tree, the enforcing perf gate
# against the committed trajectory, and every calibration band from
# DESIGN.md §5 (exits non-zero on drift).
verify: race bench-gate
	$(GO) run ./cmd/experiments -verify

# Regenerate the figure CSVs under results/.
csv:
	$(GO) run ./cmd/experiments -run all -csv results

cover:
	$(GO) test -cover ./...

# A short pass over every fuzz target — enough to catch regressions in the
# frame decoder, stream resync, model loader, workload CSV parser and the
# history query endpoint without tying up CI.
FUZZTIME ?= 10s
fuzz-short:
	$(GO) test -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME) ./internal/meter/serial/
	$(GO) test -run '^$$' -fuzz '^FuzzReaderResync$$' -fuzztime $(FUZZTIME) ./internal/meter/serial/
	$(GO) test -run '^$$' -fuzz '^FuzzLoadModel$$' -fuzztime $(FUZZTIME) ./internal/core/
	$(GO) test -run '^$$' -fuzz '^FuzzHistoryQuery$$' -fuzztime $(FUZZTIME) ./internal/powerd/
	$(GO) test -run '^$$' -fuzz '^FuzzTraceFromCSV$$' -fuzztime $(FUZZTIME) ./internal/workload/
	$(GO) test -run '^$$' -fuzz '^FuzzGeneratorTicks$$' -fuzztime $(FUZZTIME) ./internal/workload/
	$(GO) test -run '^$$' -fuzz '^FuzzParseScenario$$' -fuzztime $(FUZZTIME) ./internal/cliutil/

# End-to-end fleetd smoke: calibrate a 3-host pool, serve on an ephemeral
# port, run 10 ticks, self-scrape /healthz and /metrics, exit non-zero on
# any missing surface.
fleetd-smoke:
	$(GO) run ./cmd/fleetd -smoke -calibration-ticks 20 -log-level warn

# End-to-end lifecycle smoke: a 2-host pool plays a scenario with every
# event class (power cycle, live migration, hot-plug, drain/undrain,
# autoscale, remove) over 30 ticks, then self-scrapes /api/v1/scenario,
# the lifecycle metrics and the event journal. The conservation audit
# runs on every tick; any violation fails the run.
lifecycle-smoke:
	$(GO) run ./cmd/fleetd -smoke -hosts 2 -calibration-ticks 20 -log-level warn \
	  -vms "x1:xlarge:acme:gcc,x2:xlarge:acme:gobmk,x3:xlarge:acme:sjeng,s1:small:edu-lab:namd,s2:small:edu-lab:namd,s3:small:edu-lab:namd,s4:small:edu-lab:namd,s5:small:edu-lab:namd,s6:small:edu-lab:namd,s7:small:edu-lab:namd,s8:small:edu-lab:namd,s9:small:edu-lab:namd,s10:small:edu-lab:namd" \
	  -scenario "s10@3:poweroff,s10@5:poweron,s1@8:migrate:1:2,n1@12:hotplug:1:small:edu-lab:namd:99,host:1@16:drain:1,host:1@22:undrain,grp:s@24:autoscale:2:5,n1@28:remove"

# Re-pin the golden experiment outputs after an intentional change to the
# simulation, calibration or solvers.
golden:
	$(GO) test ./internal/experiments/ -run TestGoldenExperimentOutputs -update

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

# Golden pins under results/golden/ are tracked in git and survive clean;
# everything else under results/ is regenerable via `make csv`. The
# committed BENCH_*.json trajectory is tracked in git and must survive
# clean too — only the scratch gate snapshot is removed.
clean:
	rm -f results/*.csv test_output.txt bench_output.txt bench_fresh_gate.json
